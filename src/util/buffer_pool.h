// Pooled byte buffers for the emulator's data plane.
//
// Executing a recovery plan used to allocate a fresh std::vector for every
// transfer's wire copy and every compute step's output — at slice
// granularity (recovery/slice.h) that is one malloc per slice, dominating
// the data plane once the GF kernels run at tens of GB/s.  BufferPool
// recycles buffers through power-of-two size classes so steady-state
// execution performs zero heap allocation per slice.
//
// Two checkout modes with different accounting:
//
//   * acquire(n) -> BufferLease — a short-lived *staging* buffer (a wire
//     payload, a compute scratch output).  Leases are RAII: the destructor
//     parks the buffer back in its size class.  Leased capacity is tracked
//     in outstanding_bytes / staging_high_water_bytes, so the staging
//     high-water mark measures peak staging memory — the quantity bounded
//     by the scheduler window (see tests/slice_exec_test.cc).
//
//   * take(n) / recycle(buf) — a *long-lived* buffer that leaves the pool's
//     custody (e.g. a chunk buffer parked in a node's store for the rest of
//     the run).  take() charges taken_outstanding_bytes; recycle() credits
//     it back when the owner is done (a store eviction, a replaced buffer).
//
// high_water_bytes unifies the two regimes: it is the peak of
// outstanding_bytes + taken_outstanding_bytes over the run, i.e. the true
// peak of pool-served live capacity.  (It used to track leases only, which
// under-reported mixed lease/take workloads.)  recycle() accepts foreign
// buffers that were never take()n, so the taken counter is credited with
// saturation at zero rather than asserted exact.
//
// Thread-safe; a single mutex guards the freelists and stats (checkout is
// rare next to the memcpy/GF work done on the buffers themselves).  The
// lock discipline is annotated for Clang's thread-safety analysis: every
// member behind mu_ is CAR_GUARDED_BY it, so an unguarded access is a
// compile error under -Wthread-safety (see util/thread_annotations.h).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/attributes.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace car::util {

class BufferPool;

/// RAII checkout of a pooled staging buffer.  Move-only; the destructor
/// returns the bytes to the pool and ends the high-water accounting.
class BufferLease {
 public:
  BufferLease() = default;
  BufferLease(BufferLease&& other) noexcept;
  BufferLease& operator=(BufferLease&& other) noexcept;
  BufferLease(const BufferLease&) = delete;
  BufferLease& operator=(const BufferLease&) = delete;
  ~BufferLease();

  [[nodiscard]] bool active() const noexcept { return pool_ != nullptr; }
  [[nodiscard]] std::vector<std::uint8_t>& bytes() noexcept { return buf_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::uint8_t* data() noexcept { return buf_.data(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return buf_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  /// End the lease but keep the bytes: the buffer leaves the pool's staging
  /// accounting and becomes the caller's to own (recycle() it when done).
  [[nodiscard]] std::vector<std::uint8_t> detach() &&;

  /// Return the buffer early (what the destructor does); idempotent.
  void release() noexcept;

 private:
  friend class BufferPool;
  BufferLease(BufferPool* pool, std::vector<std::uint8_t> buf,
              std::size_t accounted) noexcept
      : pool_(pool), buf_(std::move(buf)), accounted_(accounted) {}

  BufferPool* pool_ = nullptr;
  std::vector<std::uint8_t> buf_;
  std::size_t accounted_ = 0;  // capacity charged to outstanding_bytes
};

class BufferPool {
 public:
  struct Stats {
    std::size_t acquires = 0;       // staging leases handed out
    std::size_t takes = 0;          // long-lived buffers checked out
    std::size_t freelist_hits = 0;  // checkouts served without an allocation
    std::size_t recycles = 0;       // buffers parked back (lease or recycle)
    std::uint64_t outstanding_bytes = 0;  // live leased capacity (staging)
    std::uint64_t taken_outstanding_bytes = 0;  // live take()n capacity
    /// Peak of outstanding_bytes + taken_outstanding_bytes over the run:
    /// the unified high-water mark across both checkout regimes.
    std::uint64_t high_water_bytes = 0;
    /// Peak of outstanding_bytes alone — the staging-only mark bounded by
    /// the scheduler window (tests/slice_exec_test.cc).
    std::uint64_t staging_high_water_bytes = 0;
    std::uint64_t pooled_bytes = 0;       // idle capacity in the freelists
  };

  /// Requests below this round up to one minimum-sized class, so tiny
  /// slices do not fragment the freelists.
  static constexpr std::size_t kMinClassBytes = 1024;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Check out a staging buffer of exactly n bytes (capacity rounded up to
  /// the size class).  n == 0 returns an inactive lease.  Contents are
  /// unspecified — callers overwrite the full range.
  [[nodiscard]] BufferLease acquire(std::size_t n) CAR_EXCLUDES(mu_)
      CAR_BOUNDARY;

  /// Check out a long-lived buffer of exactly n bytes.  Reuses pooled
  /// capacity; the class capacity is charged to taken_outstanding_bytes
  /// (and thereby the unified high_water_bytes) until recycle()d.  The
  /// buffer belongs to the caller until then (or forever).
  [[nodiscard]] std::vector<std::uint8_t> take(std::size_t n)
      CAR_EXCLUDES(mu_) CAR_BOUNDARY;

  /// Park a buffer's capacity for reuse and credit taken_outstanding_bytes
  /// (saturating at zero: foreign vectors that were never take()n are
  /// accepted too).  Buffers smaller than the minimum class are dropped.
  void recycle(std::vector<std::uint8_t>&& buf) CAR_EXCLUDES(mu_)
      CAR_BOUNDARY;

  [[nodiscard]] Stats stats() const CAR_EXCLUDES(mu_);

  /// Drop all idle pooled capacity (freelists), keeping stats counters.
  void trim() CAR_EXCLUDES(mu_);

  /// The power-of-two capacity class serving a request of n bytes.
  [[nodiscard]] static std::size_t class_bytes(std::size_t n) noexcept;

 private:
  friend class BufferLease;

  /// Pop a freelist buffer for the class of n, or allocate one.  Returns it
  /// resized to n.
  std::vector<std::uint8_t> checkout_locked(std::size_t n) CAR_REQUIRES(mu_);

  void end_lease(std::vector<std::uint8_t>&& buf, std::size_t accounted,
                 bool park) noexcept CAR_EXCLUDES(mu_);

  mutable Mutex mu_;
  // Freelists indexed by log2(class capacity); 64 covers every size_t class.
  std::array<std::vector<std::vector<std::uint8_t>>, 64> free_
      CAR_GUARDED_BY(mu_);
  Stats stats_ CAR_GUARDED_BY(mu_);
};

}  // namespace car::util
