// Quickstart: encode a stripe with Reed-Solomon, lose a chunk, and recover
// it twice — once with a plain decode and once with CAR-style partial
// decoding (intra-rack aggregation) — verifying both give the same bytes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "rs/code.h"
#include "rs/partial.h"
#include "util/rng.h"

int main() {
  using namespace car;

  // A (k=4, m=2) Reed-Solomon code: 4 data chunks, 2 parity chunks.
  const rs::Code code(4, 2);
  constexpr std::size_t kChunkSize = 1 << 16;  // 64 KiB

  // Make 4 random data chunks and encode the stripe.
  util::Rng rng(2026);
  std::vector<rs::Chunk> data(code.k(), rs::Chunk(kChunkSize));
  for (auto& chunk : data) rng.fill_bytes(chunk);
  std::vector<rs::ChunkView> views(data.begin(), data.end());
  const auto stripe = code.encode_stripe(views);
  std::printf("encoded stripe: %zu data + %zu parity chunks of %zu KiB\n",
              code.k(), code.m(), kChunkSize / 1024);

  // Lose chunk 2 (a data chunk). Any k=4 of the 5 survivors can rebuild it.
  constexpr std::size_t kLost = 2;
  const std::vector<std::size_t> survivors = {0, 1, 3, 4};  // uses parity 4
  std::vector<rs::ChunkView> survivor_chunks;
  for (auto id : survivors) survivor_chunks.push_back(stripe[id]);

  // 1) Plain reconstruction: H_lost = sum_i y[i] * survivor_i.
  const auto direct = code.reconstruct(kLost, survivors, survivor_chunks);
  std::printf("direct reconstruction: %s\n",
              direct == stripe[kLost] ? "bit-exact" : "MISMATCH");

  // 2) CAR-style partial decoding: pretend survivors {0,1} share rack A and
  //    {3,4} share rack B. Each rack aggregates locally and ships ONE chunk.
  const auto y = code.repair_vector(kLost, survivors);
  const rs::PartialGroup rack_a{{0, 1}};
  const rs::PartialGroup rack_b{{2, 3}};
  const auto partial_a = rs::partial_decode(y, rack_a, survivor_chunks);
  const auto partial_b = rs::partial_decode(y, rack_b, survivor_chunks);
  std::vector<rs::ChunkView> partials = {partial_a, partial_b};
  const auto aggregated = rs::combine_partials(partials);
  std::printf("partial-decode reconstruction: %s\n",
              aggregated == stripe[kLost] ? "bit-exact" : "MISMATCH");

  std::printf(
      "cross-rack traffic: %zu chunks with aggregation vs %zu without\n",
      partials.size(), survivors.size());
  return aggregated == stripe[kLost] && direct == stripe[kLost] ? 0 : 1;
}
