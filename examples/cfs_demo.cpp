// End-to-end demo of the miniature clustered file system built on CAR.
//
// Writes files into an emulated CFS2-style cluster, kills a node, shows
// degraded reads serving data through CAR partial decoding, repairs the node
// with the full CAR pipeline, and verifies every byte afterwards.
//
// Build & run:  ./build/examples/cfs_demo
#include <cstdio>

#include "cfs/filesystem.h"
#include "cluster/configs.h"
#include "util/bytes.h"

int main() {
  using namespace car;

  cfs::FsConfig config{cluster::cfs2().topology(), 6, 3,
                       /*chunk_size=*/64 * 1024, /*seed=*/2026, {}};
  config.emul.node_bps = 400e6;
  cfs::FileSystem fs(config);
  std::printf("CFS: %s racks, RS(%zu,%zu), %s chunks\n",
              fs.topology().to_string().c_str(), fs.code().k(), fs.code().m(),
              util::format_bytes(config.chunk_size).c_str());

  // Write a few files.
  util::Rng rng(7);
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> files;
  for (int i = 0; i < 3; ++i) {
    std::vector<std::uint8_t> data(300'000 + 50'000 * i);
    rng.fill_bytes(data);
    files.emplace_back("file" + std::to_string(i), data);
    const auto meta = fs.write_file(files.back().first, data);
    std::printf("wrote %-6s %8zu bytes -> %zu stripes\n", meta.name.c_str(),
                data.size(), meta.stripes.size());
  }
  std::printf("cluster stores %zu chunks total\n\n", fs.total_chunks());

  // Fail the busiest node.
  const auto occupancy = fs.placement().node_occupancy();
  cluster::NodeId victim = 0;
  for (cluster::NodeId n = 0; n < occupancy.size(); ++n) {
    if (occupancy[n] > occupancy[victim]) victim = n;
  }
  fs.fail_node(victim);
  std::printf("node %zu failed (%zu chunks lost)\n", victim,
              occupancy[victim]);

  // Reads still work (degraded reads under the hood).
  bool degraded_ok = true;
  for (const auto& [name, data] : files) {
    degraded_ok &= fs.read_file(name) == data;
  }
  std::printf("degraded reads while down: %s\n",
              degraded_ok ? "all bytes exact" : "MISMATCH");

  // Repair with CAR.
  const auto report = fs.repair();
  std::printf("repair: %zu chunks rebuilt on node %zu in %.3f s, "
              "cross-rack %s, lambda %.3f\n",
              report.chunks_rebuilt, report.replacement, report.wall_s,
              util::format_bytes(report.cross_rack_bytes).c_str(),
              report.lambda);

  bool ok = true;
  for (const auto& [name, data] : files) ok &= fs.read_file(name) == data;
  std::printf("post-repair verification: %s\n",
              ok ? "all bytes exact" : "MISMATCH");
  return ok && degraded_ok ? 0 : 1;
}
