#include "recovery/compute.h"

#include <algorithm>
#include <array>
#include <cstdint>

#include "gf/region.h"
#include "util/check.h"

namespace car::recovery {

void execute_compute_slice(const PlanStep& step,
                           std::span<const rs::Chunk* const> inputs,
                           std::uint64_t chunk_size, std::uint64_t offset,
                           std::span<std::uint8_t> out,
                           const std::string& context) {
  CAR_CHECK_STATE(inputs.size() == step.inputs.size(),
                  context + ": gathered inputs do not match step arity");
  CAR_CHECK_STATE(!inputs.empty(), context + ": compute with no inputs");
  for (const rs::Chunk* buf : inputs) {
    CAR_CHECK_STATE(buf != nullptr, context + ": compute input missing");
  }
  // Buffer-size contract: every input of a linear combination must hold a
  // full chunk, the slice range must lie inside it, and the (sliced)
  // step's declared compute volume must equal |inputs| * slice bytes.
  for (const rs::Chunk* buf : inputs) {
    CAR_CHECK_STATE(buf->size() == chunk_size,
                    context + ": compute input size mismatch");
  }
  CAR_CHECK_STATE(offset + out.size() <= chunk_size,
                  context + ": compute slice range exceeds the chunk");
  CAR_CHECK_STATE(
      step.bytes == static_cast<std::uint64_t>(out.size()) * inputs.size(),
      context + ": compute bytes do not equal inputs * slice size");
  CAR_CHECK_STATE(inputs.size() <= kMaxComputeInputs,
                  context + ": compute arity exceeds the GF(2^8) bound");

  // Stack scratch, not vectors: this runs once per slice, and kMaxComputeInputs
  // bounds the arity (checked above), so the hot path allocates nothing.
  std::array<std::uint8_t, kMaxComputeInputs> coeffs;
  std::array<rs::ChunkView, kMaxComputeInputs> views;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    coeffs[i] = step.inputs[i].coeff;
    views[i] = rs::ChunkView(*inputs[i]).subspan(
        static_cast<std::size_t>(offset), out.size());
  }
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  gf::linear_combine_acc({coeffs.data(), inputs.size()},
                         {views.data(), inputs.size()}, out);
}

rs::Chunk execute_compute_step(const PlanStep& step,
                               std::span<const rs::Chunk* const> inputs,
                               const std::string& context) {
  CAR_CHECK_STATE(inputs.size() == step.inputs.size(),
                  context + ": gathered inputs do not match step arity");
  CAR_CHECK_STATE(!inputs.empty(), context + ": compute with no inputs");
  CAR_CHECK_STATE(inputs.front() != nullptr,
                  context + ": compute input missing");
  // The chunk size is inferred from the first input; the slice variant then
  // enforces that every input matches it (degenerate single-slice call
  // covering the whole chunk).
  const std::size_t chunk_bytes = inputs.front()->size();
  rs::Chunk out(chunk_bytes, 0);
  execute_compute_slice(step, inputs, chunk_bytes, 0, out, context);
  return out;
}

}  // namespace car::recovery
