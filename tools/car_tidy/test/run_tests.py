#!/usr/bin/env python3
"""Fixture-test runner for the car-tidy clang-tidy plugin.

Each ``<check>.cpp`` fixture in this directory is run through clang-tidy
with ONLY the matching ``car-<check>`` check enabled.  Expectations are
written inline::

    v.push_back(1);  // EXPECT: container growth in a CAR_HOT function

Every EXPECT line must produce a warning at that line whose message
contains the given substring, and the TOTAL number of car-* warnings for
the fixture must equal the number of EXPECT lines — so the clean
"non-finding" sections of each fixture are verified to stay silent, not
just ignored.

Usage:
    run_tests.py --clang-tidy /usr/bin/clang-tidy-18 \
                 --plugin build/tools/car_tidy/libcar_tidy_checks.so
"""

import argparse
import pathlib
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"//\s*EXPECT:\s*(.+?)\s*$")
# clang-tidy diagnostic: <file>:<line>:<col>: warning: <message> [car-<check>]
DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):\d+:\s+warning:\s+(?P<msg>.*?)\s+"
    r"\[(?P<check>car-[a-z-]+)\]\s*$",
    re.MULTILINE,
)


def collect_expectations(fixture: pathlib.Path):
    expects = []  # (line_number, substring)
    for lineno, line in enumerate(fixture.read_text().splitlines(), start=1):
        m = EXPECT_RE.search(line)
        if m:
            expects.append((lineno, m.group(1)))
    return expects


def run_fixture(clang_tidy: str, plugin: str, fixture: pathlib.Path) -> list:
    """Returns a list of failure strings (empty = pass)."""
    check = "car-" + fixture.stem
    cmd = [
        clang_tidy,
        f"--load={plugin}",
        f"--checks=-*,{check}",
        "--warnings-as-errors=",
        str(fixture),
        "--",
        "-std=c++20",
        "-fexceptions",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    output = proc.stdout + proc.stderr
    if "error: " in output and "[clang-diagnostic" in output:
        return [f"fixture failed to parse:\n{output}"]
    if f"unknown check: {check}" in output or "Unable to load" in output:
        return [f"plugin/check not loadable:\n{output}"]

    diags = [
        (int(m.group("line")), m.group("msg"), m.group("check"))
        for m in DIAG_RE.finditer(output)
        if pathlib.Path(m.group("file")).name == fixture.name
    ]
    expects = collect_expectations(fixture)
    failures = []

    for lineno, substring in expects:
        hit = any(d_line == lineno and substring in d_msg
                  for d_line, d_msg, _ in diags)
        if not hit:
            failures.append(
                f"{fixture.name}:{lineno}: expected a {check} warning "
                f"containing {substring!r}, got none")

    if len(diags) != len(expects):
        listing = "\n".join(
            f"  line {d_line}: {d_msg}" for d_line, d_msg, _ in diags)
        failures.append(
            f"{fixture.name}: expected exactly {len(expects)} warnings, "
            f"got {len(diags)}:\n{listing or '  (none)'}")

    if failures:
        failures.append(f"--- clang-tidy output for {fixture.name} ---\n"
                        f"{output}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", required=True,
                        help="path to the clang-tidy binary")
    parser.add_argument("--plugin", required=True,
                        help="path to libcar_tidy_checks.so")
    parser.add_argument("--fixture-dir",
                        default=str(pathlib.Path(__file__).parent),
                        help="directory holding the *.cpp fixtures")
    args = parser.parse_args()

    fixtures = sorted(pathlib.Path(args.fixture_dir).glob("*.cpp"))
    if not fixtures:
        print(f"no fixtures found in {args.fixture_dir}", file=sys.stderr)
        return 2

    failed = 0
    for fixture in fixtures:
        failures = run_fixture(args.clang_tidy, args.plugin, fixture)
        if failures:
            failed += 1
            print(f"FAIL {fixture.name}")
            for f in failures:
                print(f"  {f}")
        else:
            n = len(collect_expectations(fixture))
            print(f"PASS {fixture.name} ({n} findings, clean sections quiet)")

    print(f"\n{len(fixtures) - failed}/{len(fixtures)} fixtures passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
