// car-check-on-boundary
//
// Public API entry points tagged CAR_BOUNDARY (util/attributes.h) must
// validate their arguments before doing work: the first *operative*
// statement of the body has to be either
//
//   * a CAR_CHECK* / CAR_DCHECK* contract macro (util/check.h), or
//   * a guard `if` whose taken branch returns or throws
//     (`if (n == 0) return {};`).
//
// Leading declaration statements are skipped — materialising a parameter
// (`auto victim = std::move(buf);`) before checking it is fine.  A boundary
// function whose first operative statement is anything else (a mutation, a
// lock, a call) is flagged: by then an invalid argument has already been
// acted on.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::car {

class CheckOnBoundaryCheck : public ClangTidyCheck {
 public:
  CheckOnBoundaryCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::car
