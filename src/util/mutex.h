// Annotated mutex wrappers for Clang's thread-safety analysis.
//
// std::mutex carries no capability attributes, so `-Wthread-safety` cannot
// reason about it.  util::Mutex is a zero-overhead std::mutex wrapper that
// declares itself a capability; util::MutexLock is the RAII holder the
// analysis understands (including early unlock()/lock() for pools that
// drop the lock around task bodies); util::CondVar is a condition variable
// that waits on a util::Mutex directly, so the REQUIRES contract on wait()
// is visible to callers.
//
// Every mutex guarding shared state in this repo is a util::Mutex with its
// guarded members tagged CAR_GUARDED_BY — see util/thread_annotations.h
// for the macro glossary and tests/negative_compile/ for the proofs that
// violations break the build.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace car::util {

/// A std::mutex that Clang's thread-safety analysis can track.
class CAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CAR_ACQUIRE() { mu_.lock(); }
  void unlock() CAR_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() CAR_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock on a util::Mutex.  Scoped-capability semantics: constructed
/// holding the mutex, released in the destructor, with explicit unlock() /
/// lock() for code that drops the lock around a long operation (the
/// executor's workers release it around each task body).
class CAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CAR_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() CAR_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release early; the destructor then does nothing.
  void unlock() CAR_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// Re-acquire after an early unlock().
  void lock() CAR_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable over util::Mutex.  wait() takes the mutex itself —
/// not a lock object — so CAR_REQUIRES(mu) states the contract in terms the
/// caller's analysis can check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, and re-acquire before returning.  The
  /// analysis-visible state is unchanged (held before, held after); the
  /// interior unlock/relock happens inside the standard library.
  void wait(Mutex& mu) CAR_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any works with any BasicLockable; util::Mutex
  // qualifies via its annotated lock()/unlock().
  std::condition_variable_any cv_;
};

}  // namespace car::util
