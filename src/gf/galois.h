// Generic runtime-sized Galois field GF(2^w), w in [2, 16].
//
// This is the reference implementation used by property tests and by code
// that needs a non-byte field; the performance-critical GF(2^8) fast path
// lives in gf/gf256.h.
#pragma once

#include <cstdint>

#include "gf/tables.h"

namespace car::gf {

/// Arithmetic over GF(2^w) backed by log/exp tables.
///
/// Elements are represented as integers in [0, 2^w).  Addition is XOR;
/// multiplication/division go through discrete logs.
class Field {
 public:
  explicit Field(unsigned w) : tables_(build_log_exp(w)) {}

  [[nodiscard]] unsigned width() const noexcept { return tables_.w; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return tables_.field_size;
  }
  [[nodiscard]] std::uint32_t order() const noexcept {
    return tables_.field_size - 1;
  }

  [[nodiscard]] static std::uint32_t add(std::uint32_t a,
                                         std::uint32_t b) noexcept {
    return a ^ b;
  }
  [[nodiscard]] static std::uint32_t sub(std::uint32_t a,
                                         std::uint32_t b) noexcept {
    return a ^ b;  // characteristic-2: subtraction == addition
  }

  [[nodiscard]] std::uint32_t mul(std::uint32_t a,
                                  std::uint32_t b) const noexcept {
    if (a == 0 || b == 0) return 0;
    return tables_.exp[tables_.log[a] + tables_.log[b]];
  }

  /// Multiplicative inverse. Throws std::domain_error on zero.
  [[nodiscard]] std::uint32_t inv(std::uint32_t a) const;

  /// a / b. Throws std::domain_error when b == 0.
  [[nodiscard]] std::uint32_t div(std::uint32_t a, std::uint32_t b) const;

  /// a^e with e >= 0 (e is an ordinary integer exponent).
  [[nodiscard]] std::uint32_t pow(std::uint32_t a,
                                  std::uint64_t e) const noexcept;

  /// alpha^i for the field generator alpha.
  [[nodiscard]] std::uint32_t exp(std::uint32_t i) const noexcept {
    return tables_.exp[i % order()];
  }

  /// Discrete log of a nonzero element. Throws std::domain_error on zero.
  [[nodiscard]] std::uint32_t log(std::uint32_t a) const;

 private:
  LogExpTables tables_;
};

}  // namespace car::gf
