// Figure 9 reproduction: recovery time per lost chunk, CAR vs RR.
//
// The paper measures wall-clock recovery on a 20-node Gigabit testbed; this
// harness replays the same plans on the flow-level simulator (src/simnet):
// 1 GbE node links, a 5x-oversubscribed core, heterogeneous per-rack compute
// (Table III stand-in).  Chunk sizes 4/8/16 MiB, 100 stripes, mean of
// 20 simulated runs (the simulator is deterministic per seed; variation
// comes from placement/failure randomness).
#include <cstdio>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "simnet/flowsim.h"
#include "util/bytes.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::size_t kStripes = 100;
constexpr int kRuns = 20;
constexpr std::uint64_t kChunkSizesMiB[] = {4, 8, 16};

// Virtual-clock emulator cross-check: same plans, real bytes, deterministic
// simulated timing.  Chunks are scaled down (recovery time is linear in
// chunk size, so the CAR/RR ratio is scale-free) and a few runs suffice
// because the emulator's virtual clock is bit-deterministic per seed.
constexpr std::uint64_t kEmulChunk = 64 * 1024;
constexpr int kEmulRuns = 3;

car::simnet::NetConfig testbed_net(std::size_t num_racks) {
  car::simnet::NetConfig net;
  net.node_bps = 125e6;       // 1 GbE
  net.oversubscription = 5.0; // scarce cross-rack bandwidth
  // Deliberately pinned to the paper's 2016-era testbed CPUs, NOT the repo
  // default (which is calibrated to this host's SIMD kernels via
  // BENCH_gf.json) — fig9 reproduces the paper's hardware balance.
  net.gf_compute_bps = 1.5e9;
  net.xor_compute_bps = 6e9;
  // Heterogeneous racks (paper Table III): A1 hosts the slowest CPUs.
  net.rack_compute_multiplier.assign(num_racks, 1.0);
  if (num_racks >= 1) net.rack_compute_multiplier[0] = 0.5;
  if (num_racks >= 4) net.rack_compute_multiplier[3] = 0.8;
  return net;
}

}  // namespace

int main() {
  using namespace car;
  std::printf("== Figure 9: recovery time per lost chunk (CAR vs RR) ==\n");
  std::printf("flow-level simulation: 1 GbE node links, 5x oversubscribed "
              "core, %zu stripes,\n%d runs per point\n\n", kStripes, kRuns);

  for (const auto& cfg : cluster::paper_configs()) {
    const auto net = testbed_net(cfg.topology().num_racks());
    util::TextTable table({"chunk size", "RR time/chunk (s)",
                           "CAR time/chunk (s)", "speedup"});
    for (const std::uint64_t mib : kChunkSizesMiB) {
      const std::uint64_t chunk_size = mib * util::kMiB;
      util::RunningStats rr_time, car_time;
      for (int run = 0; run < kRuns; ++run) {
        util::Rng rng(0xF1900000ULL + run * 613 + mib);
        const auto placement = cluster::Placement::random(
            cfg.topology(), cfg.k, cfg.m, kStripes, rng);
        const auto scenario = cluster::inject_random_failure(placement, rng);
        const auto censuses = recovery::build_censuses(placement, scenario);
        const rs::Code code(cfg.k, cfg.m);
        const double lost = static_cast<double>(scenario.lost.size());

        const auto rr = recovery::plan_rr(placement, censuses, rng);
        const auto rr_plan = recovery::build_rr_plan(
            placement, code, rr, chunk_size, scenario.failed_node);
        rr_time.add(
            simnet::simulate_plan(placement.topology(), rr_plan, net)
                .makespan_s / lost);

        const auto balanced =
            recovery::balance_greedy(placement, censuses, {50});
        const auto car_plan = recovery::build_car_plan(
            placement, code, balanced.solutions, chunk_size,
            scenario.failed_node);
        car_time.add(
            simnet::simulate_plan(placement.topology(), car_plan, net)
                .makespan_s / lost);
      }
      table.add_row({std::to_string(mib) + " MiB",
                     util::fmt_double(rr_time.mean(), 3) + " +- " +
                         util::fmt_double(rr_time.sample_stddev(), 3),
                     util::fmt_double(car_time.mean(), 3) + " +- " +
                         util::fmt_double(car_time.sample_stddev(), 3),
                     util::fmt_percent(1.0 - car_time.mean() /
                                                 rr_time.mean())});
    }
    std::printf("-- %s %s, RS(%zu,%zu) --\n", cfg.name.c_str(),
                cfg.topology().to_string().c_str(), cfg.k, cfg.m);
    std::printf("%s\n", table.to_string().c_str());

    // Cross-check on the real-byte emulator under the virtual clock: every
    // transfer moves actual data through the link reservations and every
    // decode runs the real GF kernels, yet the sweep finishes in
    // host-milliseconds and the reported times are deterministic.
    util::RunningStats emul_speedup;
    for (int run = 0; run < kEmulRuns; ++run) {
      util::Rng rng(0xF1910000ULL + run * 271);
      const auto placement = cluster::Placement::random(
          cfg.topology(), cfg.k, cfg.m, kStripes, rng);
      const auto scenario = cluster::inject_random_failure(placement, rng);
      const auto censuses = recovery::build_censuses(placement, scenario);
      const rs::Code code(cfg.k, cfg.m);

      emul::EmulConfig emul_cfg;
      emul_cfg.node_bps = 125e6;
      emul_cfg.oversubscription = 5.0;
      emul_cfg.clock_mode = emul::ClockMode::kVirtual;

      auto recover = [&](const recovery::RecoveryPlan& plan) {
        emul::Cluster cluster(cfg.topology(), emul_cfg);
        util::Rng data_rng(rng.next_below(1ull << 62));
        cluster.populate(placement, code, kEmulChunk, data_rng);
        cluster.erase_node(scenario.failed_node);
        return cluster.execute(plan).wall_s;
      };

      const auto rr = recovery::plan_rr(placement, censuses, rng);
      const double rr_s = recover(recovery::build_rr_plan(
          placement, code, rr, kEmulChunk, scenario.failed_node));
      const auto balanced = recovery::balance_greedy(placement, censuses,
                                                     {50});
      const double car_s = recover(recovery::build_car_plan(
          placement, code, balanced.solutions, kEmulChunk,
          scenario.failed_node));
      emul_speedup.add(1.0 - car_s / rr_s);
    }
    std::printf("virtual-clock emulator cross-check (%s chunks, %d runs): "
                "CAR %s faster than RR\n\n",
                util::format_bytes(kEmulChunk).c_str(), kEmulRuns,
                util::fmt_percent(emul_speedup.mean()).c_str());
  }
  std::printf("Paper reference: CAR cuts 53.8%% of recovery time in CFS2 "
              "@8MiB; recovery time\ngrows with both k and chunk size, and "
              "CAR's advantage widens with k.\n");
  return 0;
}
