#include "util/bytes.h"

#include <cstdio>

namespace car::util {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof buf, "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_rate(double bytes_per_second) {
  char buf[64];
  constexpr double kMB = 1e6;
  constexpr double kGB = 1e9;
  if (bytes_per_second >= kGB) {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_second / kGB);
  } else if (bytes_per_second >= kMB) {
    std::snprintf(buf, sizeof buf, "%.1f MB/s", bytes_per_second / kMB);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f KB/s", bytes_per_second / 1e3);
  }
  return buf;
}

}  // namespace car::util
