// Partial decoding — CAR's intra-rack aggregation primitive (paper §IV-C).
//
// Reconstruction of a lost chunk is H = sum_i y[i] * H'_i over the k chosen
// survivors.  When several survivors live in the same rack, a designated
// aggregator node computes the *partially decoded chunk*
//     P_rack = sum_{i in rack} y[i] * H'_i
// locally and ships only P_rack across the rack boundary.  The replacement
// node then XORs the per-rack partials:  H = XOR over racks of P_rack.
//
// This header provides the grouped computation plus the final combine, so the
// codec, the emulator, and the tests all share one implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rs/code.h"

namespace car::rs {

/// A group of survivor positions handled by one aggregator.  `positions`
/// index into the survivor list passed to Code::repair_vector (i.e. position
/// t refers to survivor_ids[t] / survivor_chunks[t] / y[t]).
struct PartialGroup {
  std::vector<std::size_t> positions;
};

/// Compute one partially decoded chunk: sum over `group.positions` of
/// y[pos] * survivor_chunks[pos].  Throws std::invalid_argument on
/// out-of-range positions or mismatched chunk sizes.
[[nodiscard]] Chunk partial_decode(std::span<const std::uint8_t> repair_vector,
                                   const PartialGroup& group,
                                   std::span<const ChunkView> survivor_chunks);

/// XOR all partially decoded chunks together to finish reconstruction.
/// Throws std::invalid_argument on empty input or mismatched sizes.
[[nodiscard]] Chunk combine_partials(std::span<const ChunkView> partials);

/// Convenience for tests: full grouped reconstruction.  `groups` must
/// partition [0, k) — every survivor position in exactly one group; throws
/// std::invalid_argument otherwise.
[[nodiscard]] Chunk reconstruct_grouped(
    const Code& code, std::size_t target,
    std::span<const std::size_t> survivor_ids,
    std::span<const ChunkView> survivor_chunks,
    std::span<const PartialGroup> groups);

}  // namespace car::rs
