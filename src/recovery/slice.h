// Slice-level lowering of recovery plans.
//
// A RecoveryPlan moves whole chunks: an aggregator's partial decode cannot
// start until every input chunk has fully arrived, and the replacement's
// final combine waits on whole partially-decoded chunks — transfer and GF
// compute serialize per stripe even though the arithmetic itself streams.
// slice_plan() splits every step into ceil(chunk_size / slice_size) slice
// steps on one uniform byte grid, with per-slice dependencies: slice s of a
// partial decode depends only on slice s of its inputs, so cross-rack
// shipping of slice s overlaps aggregation of slice s+1 and the stripe's
// makespan drops toward max(transfer, compute) instead of their sum.
//
// The lowering is a pure renumbering on a grid:
//
//   sliced id of (base step x, slice s) = x * num_slices + s
//   deps of (x, s)                      = { (d, s) : d in x.deps }
//   bytes of (x, s)                     = slice length (x length * |inputs|
//                                         for computes)
//
// Degenerate case: slice_size >= chunk_size yields exactly one slice per
// step with identical ids, deps, and bytes — executing such a SlicePlan is
// the *same computation* as executing the base plan, which is how the
// executors (emul::Cluster, inject::ResilientRuntime) serve both paths with
// one core.  Slicing never changes what moves where: per-link and
// cross-rack byte totals are bit-identical to the base plan
// (recovery::validate_sliced_plan checks this statically, the differential
// tests check it dynamically).
//
// Slice steps carry base-plan buffer references: a sliced transfer writes
// bytes [offset, offset+length) of the *whole* destination buffer, and a
// sliced compute writes the same range of its base step's output buffer.
// Executors therefore need ranged buffer writes (emul::Cluster::
// write_buffer_range) backed by full-chunk buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "cluster/topology.h"
#include "cluster/types.h"
#include "recovery/plan.h"
#include "util/check.h"

namespace car::recovery {

/// The sliced-step id of (base_step, slice) on a grid of num_slices slices
/// per base step, computed in 64-bit with an overflow check: a wrap would
/// silently alias two different slices onto one id, so it is a hard error
/// (util::CheckError) instead.  Every consumer of the grid — executors,
/// validators, the fault-injection runtime — goes through this helper (or
/// SlicePlan::sliced_id / PlanArena::sliced_id, which share the check)
/// rather than writing `base * num_slices + slice` by hand; the car-tidy
/// check car-no-raw-virtual-time-arithmetic enforces that.
[[nodiscard]] inline std::uint64_t sliced_id(std::uint64_t base_step,
                                             std::uint64_t num_slices,
                                             std::uint64_t slice) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  CAR_CHECK(num_slices == 0 || base_step <= (kMax - slice) / num_slices,
            "sliced_id: base_step * num_slices + slice overflows uint64_t");
  return base_step * num_slices + slice;
}

/// Where a sliced step came from: its base step, slice index, and the byte
/// range it covers within the chunk.
struct SliceInfo {
  std::size_t base_step = 0;
  std::size_t slice = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const SliceInfo&, const SliceInfo&) = default;
};

/// A lowered plan: base steps split into per-slice steps on a uniform grid.
struct SlicePlan {
  cluster::NodeId replacement = 0;
  cluster::RackId replacement_rack = 0;
  std::uint64_t chunk_size = 0;
  /// Effective slice size: min(requested, chunk_size).  The final slice of
  /// each step may be shorter when chunk_size % slice_size != 0.
  std::uint64_t slice_size = 0;
  std::size_t num_slices = 1;
  std::size_t num_base_steps = 0;

  /// Sliced steps, ids dense in [0, num_base_steps * num_slices).  Buffer
  /// references (payload, inputs, step-output ids) are BASE-plan
  /// references; info[] maps each step to its byte range.
  std::vector<PlanStep> steps;
  std::vector<SliceInfo> info;  // parallel to steps

  /// Reconstruction outputs, step_id referring to BASE step ids (the
  /// output buffer is assembled from all of that step's slices).
  std::vector<RecoveryPlan::Output> outputs;

  /// The id of (base step, slice) on the grid, computed in 64-bit: a
  /// million-step plan sliced 4096 ways overflows 32-bit arithmetic, and
  /// even size_t can wrap on adversarial inputs — that wrap would silently
  /// alias two different slices onto one id, so it is a hard error instead.
  /// Throws util::CheckError when base_step * num_slices + slice does not
  /// fit in uint64_t.
  [[nodiscard]] std::uint64_t sliced_id(std::uint64_t base_step,
                                        std::uint64_t slice) const {
    return recovery::sliced_id(base_step,
                               static_cast<std::uint64_t>(num_slices), slice);
  }

  [[nodiscard]] std::uint64_t cross_rack_bytes() const noexcept {
    return recovery::cross_rack_bytes(std::span<const PlanStep>(steps));
  }
  [[nodiscard]] std::uint64_t intra_rack_bytes() const noexcept {
    return recovery::intra_rack_bytes(std::span<const PlanStep>(steps));
  }
  [[nodiscard]] std::uint64_t compute_bytes() const noexcept {
    return recovery::compute_bytes(std::span<const PlanStep>(steps));
  }
  [[nodiscard]] std::vector<std::uint64_t> per_rack_cross_bytes(
      const cluster::Topology& topology) const {
    return recovery::per_rack_cross_bytes(std::span<const PlanStep>(steps),
                                          topology);
  }
};

/// Recommended default slice size (see EXPERIMENTS.md: large enough that
/// per-slice event overhead is negligible, small enough that pipelining
/// approaches the max(transfer, compute) bound for multi-MiB chunks).
inline constexpr std::uint64_t kDefaultSliceBytes = 64 * 1024;

/// Lower `plan` onto a slice grid of `slice_size` bytes (clamped to
/// chunk_size; ceil(chunk_size / slice_size) slices per step).  Throws
/// util::CheckError when slice_size == 0, when a non-empty plan has
/// chunk_size == 0, or when a step's declared bytes violate the plan
/// contract (transfers move chunk_size, computes touch
/// chunk_size * |inputs|).
SlicePlan slice_plan(const RecoveryPlan& plan, std::uint64_t slice_size);

}  // namespace car::recovery
