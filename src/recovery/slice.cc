#include "recovery/slice.h"

#include <algorithm>

#include "util/check.h"

namespace car::recovery {

SlicePlan slice_plan(const RecoveryPlan& plan, std::uint64_t slice_size) {
  CAR_CHECK(slice_size > 0, "slice_plan: slice_size must be > 0");

  SlicePlan sliced;
  sliced.replacement = plan.replacement;
  sliced.replacement_rack = plan.replacement_rack;
  sliced.chunk_size = plan.chunk_size;
  sliced.outputs = plan.outputs;
  sliced.num_base_steps = plan.steps.size();
  if (plan.steps.empty()) {
    sliced.slice_size = std::min(slice_size, plan.chunk_size);
    sliced.num_slices = 1;
    return sliced;
  }

  CAR_CHECK(plan.chunk_size > 0,
            "slice_plan: non-empty plan with chunk_size == 0");
  const std::uint64_t effective = std::min(slice_size, plan.chunk_size);
  const std::size_t num_slices =
      static_cast<std::size_t>((plan.chunk_size + effective - 1) / effective);
  sliced.slice_size = effective;
  sliced.num_slices = num_slices;

  sliced.steps.reserve(plan.steps.size() * num_slices);
  sliced.info.reserve(plan.steps.size() * num_slices);
  for (std::size_t index = 0; index < plan.steps.size(); ++index) {
    const PlanStep& base = plan.steps[index];
    // The id grid (base id * num_slices + slice) requires dense base ids.
    CAR_CHECK(base.id == index, "slice_plan: step ids must be dense");
    // The slice grid only makes sense when the base step obeys the plan
    // byte contract; a violation here would silently skew every slice.
    if (base.kind == StepKind::kTransfer) {
      CAR_CHECK(base.bytes == plan.chunk_size,
                "slice_plan: transfer step bytes != chunk_size");
    } else {
      CAR_CHECK(base.bytes == plan.chunk_size * base.inputs.size(),
                "slice_plan: compute step bytes != chunk_size * |inputs|");
    }
    for (std::size_t s = 0; s < num_slices; ++s) {
      const std::uint64_t offset = static_cast<std::uint64_t>(s) * effective;
      const std::uint64_t length =
          std::min(effective, plan.chunk_size - offset);

      PlanStep step = base;
      step.id = static_cast<std::size_t>(sliced.sliced_id(base.id, s));
      step.deps.clear();
      step.deps.reserve(base.deps.size());
      // Per-slice dependencies: slice s waits only on slice s of each
      // prerequisite — the pipelining this whole lowering exists for.
      for (const std::size_t dep : base.deps) {
        step.deps.push_back(static_cast<std::size_t>(sliced.sliced_id(dep, s)));
      }
      step.bytes = base.kind == StepKind::kTransfer
                       ? length
                       : length * static_cast<std::uint64_t>(
                                      base.inputs.size());
      sliced.steps.push_back(std::move(step));
      sliced.info.push_back(SliceInfo{base.id, s, offset, length});
    }
  }
  return sliced;
}

}  // namespace car::recovery
