#include "rs/update.h"

#include "gf/region.h"
#include "util/check.h"

namespace car::rs {

Chunk data_delta(ChunkView old_data, ChunkView new_data) {
  CAR_CHECK_EQ(old_data.size(), new_data.size(),
               "data_delta: size mismatch");
  Chunk delta(old_data.begin(), old_data.end());
  gf::xor_region(new_data, delta);
  return delta;
}

Chunk parity_delta(const Code& code, std::size_t data_index,
                   std::size_t parity_index, ChunkView delta) {
  CAR_CHECK_LT(data_index, code.k(),
               "parity_delta: data index out of range");
  CAR_CHECK_LT(parity_index, code.m(),
               "parity_delta: parity index out of range");
  const auto row = code.generator_row(code.k() + parity_index);
  Chunk update(delta.size(), 0);
  gf::mul_region(row[data_index], delta, update);
  return update;
}

std::vector<Chunk> parity_deltas(const Code& code, std::size_t data_index,
                                 ChunkView delta) {
  std::vector<Chunk> updates;
  updates.reserve(code.m());
  for (std::size_t j = 0; j < code.m(); ++j) {
    updates.push_back(parity_delta(code, data_index, j, delta));
  }
  return updates;
}

void apply_parity_delta(ChunkView update, std::span<std::uint8_t> parity) {
  gf::xor_region(update, parity);
}

}  // namespace car::rs
