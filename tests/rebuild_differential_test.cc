// Randomized differential suite for the rebuild control plane.
//
// Invariant: a concurrent, overlapping rebuild of F rolling failures
// recovers byte-for-byte what a sequential one-at-a-time rebuild recovers
// (batch size 1, concurrency 1 — every stripe is planned and executed to
// completion strictly in priority order).  Both runs are independently
// checked against the original encoding (run_rebuild_scenario's bit-exact
// verification), and their recovered chunk sets must agree exactly, across
// seeds, slice granularities, both strategies, and F in {2, 3}.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "inject/scenario.h"
#include "rebuild/scenario.h"

namespace car::rebuild {
namespace {

struct DifferentialCase {
  std::uint64_t seed;
  std::size_t slice_kib;  // 0 = chunk-granular
  std::string strategy;
  std::size_t failures;  // F: rolling failure count
};

std::string case_name(const testing::TestParamInfo<DifferentialCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_slice" +
         std::to_string(info.param.slice_kib) + "_" + info.param.strategy +
         "_f" + std::to_string(info.param.failures);
}

/// Rolling-failure spec: F = 2 uses RS(4,2) over three racks, F = 3 uses
/// RS(4,3) over four racks; crash nodes land in distinct racks with the
/// later failures timed to overlap the in-flight rebuild.
inject::Scenario make_scenario(const DifferentialCase& param) {
  std::string spec = "name differential\n";
  if (param.failures == 2) {
    spec += "racks 4,4,4\nk 4\nm 2\nstripes 14\n";
    spec += "crash node=0 at=0\ncrash node=6 at=0.002\n";
  } else {
    spec += "racks 4,4,4,4\nk 4\nm 3\nstripes 12\n";
    spec += "crash node=0 at=0\ncrash node=5 at=0.002\ncrash node=9 at=0.005\n";
  }
  spec += "chunk-kib 16\n";
  if (param.slice_kib > 0) {
    spec += "slice-kib " + std::to_string(param.slice_kib) + "\n";
  }
  spec += "seed " + std::to_string(param.seed) + "\n";
  spec += "strategy " + param.strategy + "\n";
  spec += "node-mbps 100\noversub 4\npage-kib 8\n";
  return inject::parse_scenario(spec);
}

class RebuildDifferential : public testing::TestWithParam<DifferentialCase> {};

TEST_P(RebuildDifferential, ConcurrentMatchesSequentialBitExactly) {
  auto concurrent = make_scenario(GetParam());
  concurrent.rebuild_batch_stripes = 4;
  concurrent.rebuild_concurrency = 3;
  auto sequential = make_scenario(GetParam());
  sequential.rebuild_batch_stripes = 1;
  sequential.rebuild_concurrency = 1;

  const auto a = run_rebuild_scenario(concurrent);
  const auto b = run_rebuild_scenario(sequential);

  // Each run is independently bit-exact against the original encoding —
  // the per-stripe seeded data is identical in both runs, so mutual
  // bit-exactness makes the recovered payloads byte-identical.
  EXPECT_TRUE(a.bit_exact);
  EXPECT_TRUE(b.bit_exact);
  ASSERT_GT(a.chunks_expected, 0u);
  EXPECT_EQ(a.chunks_expected, b.chunks_expected);
  EXPECT_EQ(a.chunks_verified, a.chunks_expected);
  EXPECT_EQ(b.chunks_verified, b.chunks_expected);

  // Identical recovered chunk sets (sorted by (stripe, chunk index)).
  ASSERT_EQ(a.result.recovered.size(), b.result.recovered.size());
  for (std::size_t i = 0; i < a.result.recovered.size(); ++i) {
    EXPECT_EQ(a.result.recovered[i].stripe, b.result.recovered[i].stripe);
    EXPECT_EQ(a.result.recovered[i].chunk_index,
              b.result.recovered[i].chunk_index);
  }
  EXPECT_EQ(a.result.failed_nodes, b.result.failed_nodes);
  EXPECT_EQ(a.result.replacement, b.result.replacement);

  // The sequential run dispatches one stripe at a time, so it can never
  // use fewer batches than the concurrent run.
  EXPECT_GE(b.result.metrics.batches_dispatched,
            a.result.metrics.batches_dispatched);
}

INSTANTIATE_TEST_SUITE_P(
    RollingFailures, RebuildDifferential,
    testing::Values(DifferentialCase{3, 0, "car", 2},
                    DifferentialCase{3, 4, "car", 2},
                    DifferentialCase{11, 4, "car", 2},
                    DifferentialCase{11, 0, "rr", 2},
                    DifferentialCase{19, 4, "rr", 2},
                    DifferentialCase{3, 4, "car", 3},
                    DifferentialCase{11, 0, "car", 3},
                    DifferentialCase{11, 4, "rr", 3},
                    DifferentialCase{19, 0, "rr", 3}),
    case_name);

}  // namespace
}  // namespace car::rebuild
