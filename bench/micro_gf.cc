// Microbenchmarks for the GF(2^8) kernels that dominate decode time.
// Supports the compute-throughput constants used by the flow simulator
// (simnet::NetConfig::gf_compute_bps / xor_compute_bps).
#include <benchmark/benchmark.h>

#include <vector>

#include "gf/galois.h"
#include "gf/gf256.h"
#include "gf/region.h"
#include "util/rng.h"

namespace {

using namespace car;

std::vector<std::uint8_t> random_buffer(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> buf(n);
  rng.fill_bytes(buf);
  return buf;
}

void BM_XorRegion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto src = random_buffer(n, 1);
  auto dst = random_buffer(n, 2);
  for (auto _ : state) {
    gf::xor_region(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_XorRegion)->Range(1 << 10, 1 << 22);

void BM_MulRegionAcc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto src = random_buffer(n, 3);
  auto dst = random_buffer(n, 4);
  std::uint8_t c = 2;
  for (auto _ : state) {
    gf::mul_region_acc(c, src, dst);
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<std::uint8_t>(c * 3 + 1) | 2;  // avoid 0/1 fast paths
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MulRegionAcc)->Range(1 << 10, 1 << 22);

void BM_MulRegionCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto src = random_buffer(n, 5);
  std::vector<std::uint8_t> dst(n);
  for (auto _ : state) {
    gf::mul_region(0x8E, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MulRegionCopy)->Range(1 << 12, 1 << 22);

void BM_Gf256ScalarMul(benchmark::State& state) {
  const auto& f = gf::Gf256::instance();
  std::uint8_t a = 3, b = 7, acc = 0;
  for (auto _ : state) {
    acc ^= f.mul(a, b);
    a = static_cast<std::uint8_t>(a + 1);
    b = static_cast<std::uint8_t>(b + 3);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Gf256ScalarMul);

void BM_GenericFieldMul(benchmark::State& state) {
  const gf::Field f(static_cast<unsigned>(state.range(0)));
  std::uint32_t a = 3, b = 7, acc = 0;
  const std::uint32_t mask = f.size() - 1;
  for (auto _ : state) {
    acc ^= f.mul(a, b);
    a = (a + 1) & mask;
    b = (b + 3) & mask;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_GenericFieldMul)->Arg(8)->Arg(16);

void BM_LinearCombine(benchmark::State& state) {
  // k-way combine of 1 MiB chunks — the inner loop of a full decode.
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChunk = 1 << 20;
  std::vector<std::vector<std::uint8_t>> rows;
  for (std::size_t i = 0; i < k; ++i) {
    rows.push_back(random_buffer(kChunk, 10 + i));
  }
  std::vector<std::span<const std::uint8_t>> views(rows.begin(), rows.end());
  std::vector<std::uint8_t> coeffs(k);
  util::Rng rng(99);
  rng.fill_bytes(coeffs);
  std::vector<std::uint8_t> out(kChunk);
  for (auto _ : state) {
    gf::linear_combine(coeffs, views, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * kChunk));
}
BENCHMARK(BM_LinearCombine)->Arg(4)->Arg(6)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
