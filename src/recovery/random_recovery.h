// RR — the paper's baseline: pick k random surviving chunks of the stripe
// and ship each of them, unaggregated, to the replacement node.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "recovery/census.h"
#include "util/rng.h"

namespace car::recovery {

/// A baseline per-stripe solution: the k survivor chunk indices to fetch.
/// No aggregation — every chunk whose host rack differs from the
/// replacement's rack crosses the core network individually.
struct RrSolution {
  cluster::StripeId stripe = 0;
  std::size_t lost_chunk = 0;
  std::vector<std::size_t> chunk_indices;  // size k, excludes lost_chunk
};

/// Uniformly random k-subset of the surviving chunks of the stripe.
RrSolution random_recovery(const cluster::Placement& placement,
                           const StripeCensus& census, util::Rng& rng);

/// One RR solution per lost chunk.
std::vector<RrSolution> plan_rr(const cluster::Placement& placement,
                                const std::vector<StripeCensus>& censuses,
                                util::Rng& rng);

}  // namespace car::recovery
