#include "gf/region.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "gf/kernels.h"
#include "util/check.h"

namespace car::gf {

namespace {

void require_same_size(std::size_t a, std::size_t b, const char* what) {
  if (a != b) CAR_CHECK_FAIL(std::string(what) + ": size mismatch");
}

// Destination tile for the fused combine: small enough that a tile stays in
// L1/L2 while every source row is folded into it, large enough that kernel
// call overhead and table reloads amortise away.
constexpr std::size_t kCombineTileBytes = std::size_t{32} * 1024;

}  // namespace

void xor_region(std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  require_same_size(src.size(), dst.size(), "xor_region");
  if (dst.empty()) return;  // empty spans may carry a null data()
  active_kernels().xor_region(src.data(), dst.data(), dst.size());
}

void mul_region(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  require_same_size(src.size(), dst.size(), "mul_region");
  if (c == 0) {
    zero_region(dst);
    return;
  }
  if (dst.empty()) return;
  if (c == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), src.size());
    }
    return;
  }
  active_kernels().mul_region(c, src.data(), dst.data(), dst.size());
}

void mul_region_acc(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) {
  require_same_size(src.size(), dst.size(), "mul_region_acc");
  if (c == 0 || dst.empty()) return;
  const Kernels& k = active_kernels();
  if (c == 1) {
    k.xor_region(src.data(), dst.data(), dst.size());
    return;
  }
  k.mul_region_acc(c, src.data(), dst.data(), dst.size());
}

void scale_region(std::uint8_t c, std::span<std::uint8_t> dst) {
  mul_region(c, dst, dst);
}

void zero_region(std::span<std::uint8_t> dst) noexcept {
  if (dst.empty()) return;  // empty spans may carry a null data()
  std::memset(dst.data(), 0, dst.size());
}

void linear_combine(std::span<const std::uint8_t> coeffs,
                    std::span<const std::span<const std::uint8_t>> rows,
                    std::span<std::uint8_t> out) {
  zero_region(out);
  linear_combine_acc(coeffs, rows, out);
}

void linear_combine_acc(std::span<const std::uint8_t> coeffs,
                        std::span<const std::span<const std::uint8_t>> rows,
                        std::span<std::uint8_t> out) {
  CAR_CHECK_EQ(coeffs.size(), rows.size(),
               "linear_combine: coeffs/rows arity mismatch");
  for (const auto& row : rows) {
    require_same_size(row.size(), out.size(), "linear_combine");
  }
  if (out.empty()) return;
  const Kernels& k = active_kernels();
  const std::size_t n = out.size();
  for (std::size_t off = 0; off < n; off += kCombineTileBytes) {
    const std::size_t len = std::min(kCombineTileBytes, n - off);
    std::uint8_t* o = out.data() + off;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint8_t c = coeffs[i];
      if (c == 0) continue;
      const std::uint8_t* s = rows[i].data() + off;
      if (c == 1) {
        k.xor_region(s, o, len);
      } else {
        k.mul_region_acc(c, s, o, len);
      }
    }
  }
}

}  // namespace car::gf
