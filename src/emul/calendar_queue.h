// Bucketed calendar/ladder queue for the virtual-clock replay engines.
//
// CalendarQueue is a min-priority queue over (time, key) pairs that pops in
// exact lexicographic order — bit-identical to
// std::priority_queue<pair<double,uint64_t>, ..., greater<>> — but with O(1)
// amortized insert/pop on the quantized virtual-time grid the link
// timelines produce, instead of O(log n) on one global heap whose working
// set thrashes the cache at datacenter scale.
//
// Structure (a two-rung ladder):
//
//   * One active rung of `bucket_count` buckets spanning
//     [rung_start, rung_start + bucket_count * width).  An event at time t
//     lands in bucket floor((t - rung_start) / width); buckets are plain
//     unsorted vectors until the drain cursor reaches them, at which point
//     the bucket is heapified once and drained as a tiny binary min-heap
//     (tens to a few hundred entries at the tuned width, so every heap op
//     touches one cache line instead of log2(n) of them).
//   * A sorted-on-demand overflow rung for far-future events at or beyond
//     the rung's end.  When the active rung drains, the overflow is
//     re-bucketed into a fresh rung whose geometry is derived from the
//     events it actually holds: width = (max - min) / bucket_count, with a
//     degenerate all-equal-times overflow falling back to unit width (the
//     rung then behaves like a single sorted bucket, which is still
//     correct — just no longer O(1)).
//
// Pop-order preservation: floor((t - rung_start) / width) is monotone in t,
// so every event in bucket b orders at or before every event in bucket b+1
// and strictly before everything in the overflow rung (routing uses the
// same floor arithmetic for inserts and re-bucketing, so an event can never
// land "behind" an equal-time event in a later structure).  Within a bucket
// the binary heap restores the full (time, key) order.  The one discipline
// the caller must honour — and the virtual-clock replays do, because a
// dependent's start time is at least its producer's finish time and forward
// deps give it a larger id — is MONOTONE INSERTION: every push must be
// strictly greater than the most recently popped (time, key).  Pushing
// behind the drain cursor trips a CAR_DCHECK in debug builds.
//
// Monotone insertion does NOT imply inserts land inside the active rung: a
// rewindow driven by a lone far-future event raises rung_start past the
// drain frontier, and a later push may legally fall in that gap (the
// rebuild control plane admits batches at the paused `now`, and streamed
// replay shards ingest t_start seeds after running ahead of the feed).
// Such sub-rung times clamp to bucket 0, which push() merges into the live
// drain heap, so they still pop before everything in the rung.
//
// Not thread-safe: each replay shard owns one queue (see the epoch-based
// safe-window protocol in emul/cluster.cc); the sequential engines in
// inject/runtime.cc and rebuild/driver.cc own theirs outright.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace car::emul {

class CalendarQueue {
 public:
  struct Entry {
    double time = 0.0;
    std::uint64_t key = 0;

    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      return a.time != b.time ? a.time < b.time : a.key < b.key;
    }
  };

  /// `expected_events` tunes the bucket count (power of two, clamped); 0
  /// picks a general-purpose default.
  explicit CalendarQueue(std::size_t expected_events = 0);

  void push(double time, std::uint64_t key);

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Smallest (time, key) entry.  Requires !empty(); may advance the drain
  /// cursor internally (hence non-const).
  [[nodiscard]] const Entry& top();

  /// Remove and return the smallest entry.  Requires !empty().
  Entry pop();

 private:
  /// Ensure cur_ holds the bucket containing the global minimum.
  void prepare();
  /// Rebuild the active rung from the overflow (requires the rung drained
  /// and the overflow non-empty).  Moves at least one event per call.
  void rewindow();
  /// Bucket index for `time`, or >= bucket_count_ when it belongs in the
  /// overflow rung.  Pure floor arithmetic — inserts and re-bucketing must
  /// agree exactly, or equal-time events could straddle the rung boundary
  /// out of order.  Times below rung_start_ (legal after a far-future
  /// rewindow; see the class comment) clamp to bucket 0 so the size_t
  /// cast never sees a negative value and the event joins the live drain
  /// heap instead of the overflow.
  [[nodiscard]] std::size_t bucket_index(double time) const noexcept;

  std::size_t bucket_count_ = 0;          // power of two
  double rung_start_ = 0.0;
  double width_ = 0.0;                    // 0 => rung not primed yet
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> cur_;                // heapified bucket being drained
  std::size_t cursor_ = 0;                // index cur_ was taken from
  std::vector<Entry> overflow_;           // unsorted, >= rung end
  std::size_t size_ = 0;
#ifndef NDEBUG
  Entry last_popped_{-1.0, 0};
  bool popped_any_ = false;
#endif
};

}  // namespace car::emul
