// Source-level markers consumed by the car-tidy static checks
// (tools/car_tidy).  Like the thread-safety macros they expand to nothing
// outside Clang; under Clang they attach `annotate` attributes that the
// AST-matcher checks key on.
//
//   CAR_HOT       tags a slice-loop / kernel function: car-no-alloc-in-
//                 hot-path rejects heap allocation (new, malloc, growing a
//                 std::vector/std::string) anywhere in its body.  Tag the
//                 functions that run once per slice or per region, not
//                 their setup code.
//
//   CAR_BOUNDARY  tags a public API entry point: car-check-on-boundary
//                 requires the function body to validate its arguments via
//                 a CAR_CHECK* contract macro (util/check.h) before the
//                 first statement that uses a parameter.
//
// Both attach to the *declaration* (usually in the header); Clang inherits
// the attribute onto the out-of-line definition, which is where the checks
// look.  Placement: before the declaration for free functions
// (`CAR_HOT void f();`) or trailing for members (`void f() CAR_BOUNDARY;`).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define CAR_HOT __attribute__((annotate("car_hot")))
#define CAR_BOUNDARY __attribute__((annotate("car_boundary")))
#else
#define CAR_HOT       // no-op outside Clang
#define CAR_BOUNDARY  // no-op outside Clang
#endif
