#include "recovery/validate.h"

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "recovery/degraded.h"
#include "recovery/metrics.h"
#include "recovery/multi.h"
#include "recovery/random_recovery.h"
#include "recovery/scheduler.h"
#include "recovery/weighted.h"

namespace car::recovery {
namespace {

using cluster::Placement;
using cluster::Topology;

constexpr std::uint64_t kChunk = 1 << 20;

struct Fixture {
  cluster::CfsConfig cfg;
  Placement placement;
  rs::Code code;
  cluster::FailureScenario scenario;
  std::vector<StripeCensus> censuses;

  explicit Fixture(int cfg_index, std::uint64_t seed, std::size_t stripes = 25)
      : cfg(cluster::paper_configs()[cfg_index]),
        placement(make_placement(cfg, stripes, seed)),
        code(cfg.k, cfg.m) {
    util::Rng rng(seed + 1);
    scenario = cluster::inject_random_failure(placement, rng);
    censuses = build_censuses(placement, scenario);
  }

  static Placement make_placement(const cluster::CfsConfig& cfg,
                                  std::size_t stripes, std::uint64_t seed) {
    util::Rng rng(seed);
    return Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  }

  [[nodiscard]] ValidateOptions options() const {
    ValidateOptions opts;
    opts.placement = &placement;
    return opts;
  }
};

void expect_valid(const ValidationReport& report) {
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- acceptance: every planner-emitted plan validates --------------------

class PlannerSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PlannerSweep, CarPlanValidatesWithClaimedTraffic) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const auto balanced = balance_greedy(f.placement, f.censuses, {50});
  const auto plan = build_car_plan(f.placement, f.code, balanced.solutions,
                                   kChunk, f.scenario.failed_node);
  auto opts = f.options();
  opts.expected_cross_rack_chunks = claimed_cross_rack_chunks(
      balanced.solutions,
      f.placement.topology().rack_of(f.scenario.failed_node));
  expect_valid(validate_plan(plan, f.placement.topology(), opts));
}

TEST_P(PlannerSweep, RrPlanValidatesWithClaimedTraffic) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  util::Rng rng(99);
  const auto rr = plan_rr(f.placement, f.censuses, rng);
  const auto plan =
      build_rr_plan(f.placement, f.code, rr, kChunk, f.scenario.failed_node);
  auto opts = f.options();
  opts.expected_cross_rack_chunks =
      rr_traffic(f.placement, rr, f.scenario.failed_rack).total_chunks();
  expect_valid(validate_plan(plan, f.placement.topology(), opts));
}

TEST_P(PlannerSweep, WeightedPlanValidates) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  std::vector<double> bandwidth(f.placement.topology().num_racks(), 1.0);
  for (std::size_t i = 0; i < bandwidth.size(); ++i) {
    bandwidth[i] += static_cast<double>(i % 2);
  }
  const auto weighted = balance_weighted(f.placement, f.censuses, bandwidth);
  const auto plan = build_car_plan(f.placement, f.code, weighted.solutions,
                                   kChunk, f.scenario.failed_node);
  auto opts = f.options();
  opts.expected_cross_rack_chunks = claimed_cross_rack_chunks(
      weighted.solutions,
      f.placement.topology().rack_of(f.scenario.failed_node));
  expect_valid(validate_plan(plan, f.placement.topology(), opts));
}

TEST_P(PlannerSweep, MultiFailurePlanValidates) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const auto& topology = f.placement.topology();
  const auto multi_scenario = make_multi_failure(
      f.placement, {f.scenario.failed_node,
                    (f.scenario.failed_node + 1) % topology.num_nodes()});
  const auto censuses = build_multi_censuses(f.placement, multi_scenario);
  const auto balanced = balance_multi(f.placement, censuses);
  const auto plan =
      build_multi_car_plan(f.placement, f.code, balanced.solutions, kChunk,
                           multi_scenario.replacement);
  auto opts = f.options();
  opts.expected_cross_rack_chunks = claimed_cross_rack_chunks(
      balanced.solutions, multi_scenario.replacement_rack);
  expect_valid(validate_plan(plan, topology, opts));
}

TEST_P(PlannerSweep, MultiRrPlanValidates) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const auto& topology = f.placement.topology();
  const auto multi_scenario = make_multi_failure(
      f.placement, {f.scenario.failed_node,
                    (f.scenario.failed_node + 2) % topology.num_nodes()});
  const auto censuses = build_multi_censuses(f.placement, multi_scenario);
  util::Rng rng(5);
  const auto rr = plan_multi_rr(f.placement, censuses, rng);
  const auto plan = build_multi_rr_plan(f.placement, f.code, rr, kChunk,
                                        multi_scenario.replacement);
  expect_valid(validate_plan(plan, topology, f.options()));
}

TEST_P(PlannerSweep, DegradedReadPlansValidate) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  // Read the first lost chunk from a surviving node in another rack.
  const auto& lost = f.scenario.lost.front();
  cluster::NodeId reader = 0;
  while (reader == f.scenario.failed_node) ++reader;
  const DegradedReadRequest request{lost.stripe, lost.chunk_index, reader};
  const auto car_plan =
      plan_degraded_read_car(f.placement, f.code, request, kChunk);
  expect_valid(validate_plan(car_plan, f.placement.topology(), f.options()));

  util::Rng rng(11);
  const auto direct_plan =
      plan_degraded_read_direct(f.placement, f.code, request, kChunk, rng);
  expect_valid(
      validate_plan(direct_plan, f.placement.topology(), f.options()));
}

TEST_P(PlannerSweep, WindowedScheduleStaysValid) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const auto balanced = balance_greedy(f.placement, f.censuses, {50});
  const auto plan = build_car_plan(f.placement, f.code, balanced.solutions,
                                   kChunk, f.scenario.failed_node);
  for (const std::size_t window : {1UL, 2UL, 4UL}) {
    expect_valid(validate_plan(schedule_windowed(plan, window),
                               f.placement.topology(), f.options()));
  }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, PlannerSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3, 17)));

// --- rejection: hand-built malformed plans -------------------------------

struct Malformed {
  Fixture fixture{1, 42};
  RecoveryPlan plan;

  Malformed() {
    const auto balanced =
        balance_greedy(fixture.placement, fixture.censuses, {50});
    plan = build_car_plan(fixture.placement, fixture.code, balanced.solutions,
                          kChunk, fixture.scenario.failed_node);
  }

  [[nodiscard]] ValidationReport validate() const {
    return validate_plan(plan, fixture.placement.topology(),
                         fixture.options());
  }
};

TEST(ValidateRejects, DependencyCycle) {
  Malformed m;
  // The first step feeds stripe 0's final compute; depending on it closes a
  // cycle.
  m.plan.steps.front().deps.push_back(m.plan.outputs.front().step_id);
  const auto report = m.validate();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("cycle"), std::string::npos)
      << report.to_string();
}

TEST(ValidateRejects, DanglingDependencyId) {
  Malformed m;
  m.plan.steps.back().deps.push_back(m.plan.steps.size() + 7);
  const auto report = m.validate();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("dangling"), std::string::npos)
      << report.to_string();
}

TEST(ValidateRejects, SelfDependency) {
  Malformed m;
  m.plan.steps.back().deps.push_back(m.plan.steps.back().id);
  EXPECT_FALSE(m.validate().ok());
}

TEST(ValidateRejects, TransferByteMismatch) {
  Malformed m;
  for (auto& step : m.plan.steps) {
    if (step.kind == StepKind::kTransfer) {
      step.bytes /= 2;
      break;
    }
  }
  const auto report = m.validate();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("chunk_size"), std::string::npos)
      << report.to_string();
}

TEST(ValidateRejects, ComputeByteMismatch) {
  Malformed m;
  for (auto& step : m.plan.steps) {
    if (step.kind == StepKind::kCompute) {
      step.bytes += 1;
      break;
    }
  }
  EXPECT_FALSE(m.validate().ok());
}

TEST(ValidateRejects, TwoAggregatorsInOneRack) {
  Malformed m;
  const auto& topology = m.fixture.placement.topology();
  // Duplicate an aggregator compute onto a sibling node in the same rack.
  bool injected = false;
  for (const auto& step : m.plan.steps) {
    if (injected) break;
    if (step.kind != StepKind::kCompute) continue;
    if (step.node == m.plan.replacement) continue;
    for (const auto sibling :
         topology.nodes_in_rack(topology.rack_of(step.node))) {
      if (sibling == step.node || sibling == m.plan.replacement) continue;
      PlanStep twin = step;
      twin.id = m.plan.steps.size();
      twin.node = sibling;
      m.plan.steps.push_back(std::move(twin));
      injected = true;
      break;
    }
  }
  ASSERT_TRUE(injected) << "fixture topology too small to inject";
  const auto report = m.validate();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("aggregator"), std::string::npos)
      << report.to_string();
}

TEST(ValidateRejects, CrossRackFlagLies) {
  Malformed m;
  for (auto& step : m.plan.steps) {
    if (step.kind == StepKind::kTransfer) {
      step.cross_rack = !step.cross_rack;
      break;
    }
  }
  EXPECT_FALSE(m.validate().ok());
}

TEST(ValidateRejects, TrafficClaimMismatch) {
  Malformed m;
  auto opts = m.fixture.options();
  // Claim one more cross-rack chunk than the plan actually ships.
  opts.expected_cross_rack_chunks =
      m.plan.cross_rack_bytes() / m.plan.chunk_size + 1;
  EXPECT_FALSE(
      validate_plan(m.plan, m.fixture.placement.topology(), opts).ok());
}

TEST(ValidateRejects, MissingDependencyBreaksDataFlow) {
  Malformed m;
  // Remove every dependency from the first compute: its gathered inputs are
  // no longer guaranteed to be on the aggregator when it runs.
  for (auto& step : m.plan.steps) {
    if (step.kind == StepKind::kCompute && !step.deps.empty()) {
      step.deps.clear();
      break;
    }
  }
  const auto report = m.validate();
  // Only fails when the first compute actually had remote inputs; find() on
  // the message keeps the assertion meaningful either way.
  if (!report.ok()) {
    EXPECT_NE(report.to_string().find("when the step may run"),
              std::string::npos)
        << report.to_string();
  }
}

TEST(ValidateRejects, OutputNeverReachesReplacement) {
  Malformed m;
  // Run the final combine somewhere other than the replacement, with no
  // transfer shipping the result back: the declared output is stranded.
  auto& final_step = m.plan.steps[m.plan.outputs.front().step_id];
  ASSERT_EQ(final_step.node, m.plan.replacement);
  final_step.node = (m.plan.replacement + 1) %
                    m.fixture.placement.topology().num_nodes();
  const auto report = m.validate();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("never reaches the replacement"),
            std::string::npos)
      << report.to_string();
}

TEST(ValidateRejects, NonDenseStepIds) {
  Malformed m;
  m.plan.steps.front().id = 999999;
  EXPECT_FALSE(m.validate().ok());
}

TEST(ValidateRejects, ZeroChunkSize) {
  Malformed m;
  m.plan.chunk_size = 0;
  EXPECT_FALSE(m.validate().ok());
}

// --- misc behaviour ------------------------------------------------------

TEST(Validate, EmptyPlanIsValid) {
  const Topology topology({3, 3});
  EXPECT_TRUE(validate_plan(RecoveryPlan{}, topology).ok());
}

TEST(Validate, WithoutPlacementSkipsDataFlowWithNote) {
  Malformed m;
  ValidateOptions opts;  // no placement
  const auto report =
      validate_plan(m.plan, m.fixture.placement.topology(), opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes.front().find("placement"), std::string::npos);
}

TEST(Validate, OversizePlanSkipsFlowAnalysisWithNote) {
  Malformed m;
  auto opts = m.fixture.options();
  opts.max_flow_analysis_steps = 1;
  const auto report =
      validate_plan(m.plan, m.fixture.placement.topology(), opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes.front().find("max_flow_analysis_steps"),
            std::string::npos);
}

TEST(Validate, ReportToStringListsEveryError) {
  Malformed m;
  m.plan.steps.back().deps.push_back(m.plan.steps.size() + 7);
  for (auto& step : m.plan.steps) {
    if (step.kind == StepKind::kTransfer) {
      step.bytes += 3;
      break;
    }
  }
  const auto report = m.validate();
  ASSERT_GE(report.errors.size(), 2U);
  const auto text = report.to_string();
  for (const auto& error : report.errors) {
    EXPECT_NE(text.find(error), std::string::npos);
  }
}

}  // namespace
}  // namespace car::recovery
