// Fault-model and event-log unit tests: FaultPlan validation, the
// order-independent per-attempt fault decision, link-fault arming, and the
// canonical (byte-stable) EventLog JSON.
#include "inject/fault.h"

#include <gtest/gtest.h>

#include <string>

#include "cluster/topology.h"
#include "emul/cluster.h"
#include "inject/event_log.h"
#include "util/check.h"

namespace car::inject {
namespace {

using cluster::Topology;

const Topology& topo() {
  static const Topology t({4, 3, 3});
  return t;
}

TEST(FaultPlan, EmptyPlanIsValid) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_NO_THROW(plan.validate(topo()));
}

TEST(FaultPlan, RejectsOutOfRangeLinkIds) {
  FaultPlan plan;
  plan.link_faults.push_back({LinkSide::kNodeUp, 10, 0.0, 1.0, 0.5});
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
  plan.link_faults.front() = {LinkSide::kRackUp, 3, 0.0, 1.0, 0.5};
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
  plan.link_faults.front() = {LinkSide::kRackUp, 2, 0.0, 1.0, 0.5};
  EXPECT_NO_THROW(plan.validate(topo()));
}

TEST(FaultPlan, RejectsMalformedWindowsAndFactors) {
  FaultPlan plan;
  plan.link_faults.push_back({LinkSide::kRackUp, 0, 1.0, 1.0, 0.5});
  EXPECT_THROW(plan.validate(topo()), util::CheckError);  // start == end
  plan.link_faults.front().end_s = 2.0;
  plan.link_faults.front().factor = -0.5;
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
}

TEST(FaultPlan, RejectsBadTransferProbabilityAndAttempts) {
  FaultPlan plan;
  TransferFault fault;
  fault.probability = 0.0;
  plan.transfer_faults.push_back(fault);
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
  plan.transfer_faults.front().probability = 0.5;
  plan.transfer_faults.front().attempts = {0};  // attempts are 1-based
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
}

TEST(FaultPlan, RejectsCrashWithBadTriggerOrNode) {
  FaultPlan plan;
  NodeCrash crash;
  crash.node = 3;
  plan.node_crashes.push_back(crash);  // neither trigger set
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
  plan.node_crashes.front().at_fraction = 0.5;
  plan.node_crashes.front().at_time_s = 1.0;  // both set
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
  plan.node_crashes.front().at_time_s.reset();
  plan.node_crashes.front().at_fraction = 1.5;
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
  plan.node_crashes.front().at_fraction = 0.5;
  plan.node_crashes.front().node = 10;  // out of range
  EXPECT_THROW(plan.validate(topo()), util::CheckError);
}

TEST(TransferFaultApplies, FiltersByStepAndAttempt) {
  TransferFault fault;
  fault.step = 3;
  fault.attempts = {1, 2};
  EXPECT_TRUE(transfer_fault_applies(fault, 0, 3, 1, 7));
  EXPECT_TRUE(transfer_fault_applies(fault, 0, 3, 2, 7));
  EXPECT_FALSE(transfer_fault_applies(fault, 0, 3, 3, 7));
  EXPECT_FALSE(transfer_fault_applies(fault, 0, 4, 1, 7));
  fault.step.reset();
  EXPECT_TRUE(transfer_fault_applies(fault, 0, 4, 1, 7));
}

TEST(TransferFaultApplies, ProbabilisticDecisionIsAPureFunction) {
  TransferFault fault;
  fault.probability = 0.5;
  std::size_t hits = 0;
  for (std::size_t step = 0; step < 200; ++step) {
    const bool a = transfer_fault_applies(fault, 1, step, 1, 42);
    const bool b = transfer_fault_applies(fault, 1, step, 1, 42);
    EXPECT_EQ(a, b);  // same inputs, same answer, any call order
    hits += a ? 1 : 0;
  }
  EXPECT_GT(hits, 50u);  // roughly half, generously bounded
  EXPECT_LT(hits, 150u);
  // A different seed flips at least one decision.
  bool any_differ = false;
  for (std::size_t step = 0; step < 200 && !any_differ; ++step) {
    any_differ = transfer_fault_applies(fault, 1, step, 1, 42) !=
                 transfer_fault_applies(fault, 1, step, 1, 43);
  }
  EXPECT_TRUE(any_differ);
}

TEST(ArmLinkFaults, InstallsRateWindowsOnTheRightLink) {
  emul::EmulConfig config;
  config.clock_mode = emul::ClockMode::kVirtual;
  emul::Cluster cluster(topo(), config);
  FaultPlan plan;
  plan.link_faults.push_back({LinkSide::kRackUp, 1, 0.5, 1.5, 0.25});
  arm_link_faults(cluster, plan, 2.0);  // t0 shifts the window
  EXPECT_DOUBLE_EQ(cluster.rack_up_link(1).rate_at(2.4),
                   cluster.rack_up_link(1).rate());
  EXPECT_DOUBLE_EQ(cluster.rack_up_link(1).rate_at(2.6),
                   cluster.rack_up_link(1).rate() * 0.25);
  EXPECT_DOUBLE_EQ(cluster.rack_up_link(0).rate_at(2.6),
                   cluster.rack_up_link(0).rate());
}

TEST(EventLog, RecordsSequencedEventsAndCounts) {
  EventLog log;
  log.record(0.0, EventKind::kRunStart);
  log.record(0.5, EventKind::kTransferAttempt, 3, 1, 2, 1024, "detail");
  log.record(0.9, EventKind::kTransferAttempt, 4, 1, 2, 1024);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[1].seq, 1u);
  EXPECT_EQ(log.count(EventKind::kTransferAttempt), 2u);
  EXPECT_EQ(log.count(EventKind::kNodeCrash), 0u);
  EXPECT_NE(log.summary().find("transfer-attempt x2"), std::string::npos);
}

TEST(EventLog, JsonIsCanonicalAndEqualityHolds) {
  EventLog a, b;
  for (EventLog* log : {&a, &b}) {
    log->record(0.0, EventKind::kRunStart, -1, -1, -1, 0, "x \"quoted\"\n");
    log->record(1.0 / 3.0, EventKind::kTransferComplete, 1, 2, 3, 77);
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_json(), b.to_json());
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"kind\":\"run-start\""), std::string::npos);
  EXPECT_NE(json.find("\"t\":\"0.333333333\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\"\\n"), std::string::npos);
  b.record(2.0, EventKind::kRunComplete);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace car::inject
