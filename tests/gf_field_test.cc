#include "gf/galois.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace car::gf {
namespace {

class FieldAxioms : public ::testing::TestWithParam<unsigned> {
 protected:
  Field field_{GetParam()};
  util::Rng rng_{GetParam() * 1234567ULL + 1};

  std::uint32_t random_element() {
    return static_cast<std::uint32_t>(rng_.next_below(field_.size()));
  }
  std::uint32_t random_nonzero() {
    return 1 + static_cast<std::uint32_t>(rng_.next_below(field_.size() - 1));
  }
};

TEST_P(FieldAxioms, AdditionIsXorAndSelfInverse) {
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_element();
    const auto b = random_element();
    EXPECT_EQ(Field::add(a, b), a ^ b);
    EXPECT_EQ(Field::add(Field::add(a, b), b), a);  // characteristic 2
    EXPECT_EQ(Field::sub(a, b), Field::add(a, b));
  }
}

TEST_P(FieldAxioms, MultiplicationIsCommutativeAndAssociative) {
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_element();
    const auto b = random_element();
    const auto c = random_element();
    EXPECT_EQ(field_.mul(a, b), field_.mul(b, a));
    EXPECT_EQ(field_.mul(field_.mul(a, b), c), field_.mul(a, field_.mul(b, c)));
  }
}

TEST_P(FieldAxioms, MultiplicationDistributesOverAddition) {
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_element();
    const auto b = random_element();
    const auto c = random_element();
    EXPECT_EQ(field_.mul(a, Field::add(b, c)),
              Field::add(field_.mul(a, b), field_.mul(a, c)));
  }
}

TEST_P(FieldAxioms, IdentityAndZeroBehave) {
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = random_element();
    EXPECT_EQ(field_.mul(a, 1), a);
    EXPECT_EQ(field_.mul(a, 0), 0u);
  }
}

TEST_P(FieldAxioms, InverseRoundTripsForEveryNonzeroSample) {
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_nonzero();
    const auto inv = field_.inv(a);
    EXPECT_EQ(field_.mul(a, inv), 1u) << "a=" << a;
    EXPECT_EQ(field_.div(1, a), inv);
  }
}

TEST_P(FieldAxioms, DivisionIsMultiplicationByInverse) {
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_element();
    const auto b = random_nonzero();
    EXPECT_EQ(field_.div(a, b), field_.mul(a, field_.inv(b)));
    EXPECT_EQ(field_.mul(field_.div(a, b), b), a);
  }
}

TEST_P(FieldAxioms, PowMatchesRepeatedMultiplication) {
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_element();
    std::uint32_t expected = 1;
    for (std::uint64_t e = 0; e < 16; ++e) {
      EXPECT_EQ(field_.pow(a, e), expected) << "a=" << a << " e=" << e;
      expected = field_.mul(expected, a);
    }
  }
}

TEST_P(FieldAxioms, GeneratorHasFullOrder) {
  // alpha^i enumerates every nonzero element exactly once.
  std::vector<bool> seen(field_.size(), false);
  for (std::uint32_t i = 0; i < field_.order(); ++i) {
    const auto x = field_.exp(i);
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
    EXPECT_EQ(field_.log(x), i);
  }
}

TEST_P(FieldAxioms, ZeroOperandsThrow) {
  EXPECT_THROW((void)field_.inv(0), std::domain_error);
  EXPECT_THROW((void)field_.div(1, 0), std::domain_error);
  EXPECT_THROW((void)field_.log(0), std::domain_error);
}

INSTANTIATE_TEST_SUITE_P(Widths, FieldAxioms,
                         ::testing::Values(2u, 4u, 8u, 12u, 16u));

}  // namespace
}  // namespace car::gf
