// Windowed scheduling of multi-stripe recovery plans.
//
// A raw RecoveryPlan lets every stripe recover concurrently, which maximises
// network utilisation but also buffers up to `stripes x k` chunks in flight
// at the replacement and aggregators.  Real repair pipelines bound that
// memory by capping the number of stripes being recovered at once.  This
// module rewrites a plan so that at most `window` stripes are in flight:
// stripes are dealt round-robin into `window` lanes, and within a lane each
// stripe's steps wait for the previous stripe's final step.
//
// window = 1  -> fully serial recovery (minimum memory, longest makespan);
// window >= #stripes -> the original fully-parallel plan.
#pragma once

#include <cstddef>
#include <span>

#include "recovery/plan.h"

namespace car::recovery {

/// Rewrite `plan` to bound in-flight stripes.  The step set is unchanged —
/// only dependencies are added — so traffic accounting is identical.
/// Throws std::invalid_argument when window == 0.
RecoveryPlan schedule_windowed(const RecoveryPlan& plan, std::size_t window);

/// Upper bound on stripes simultaneously in flight under this plan's
/// dependencies (computed from the lane structure: number of distinct
/// stripes with no inter-stripe ordering).  For plans produced by
/// schedule_windowed this equals min(window, #stripes); for raw builder
/// plans it equals the stripe count.
std::size_t max_inflight_stripes(const RecoveryPlan& plan);

/// Readiness surface consumed by DAG executors (emul::Executor and the
/// emulator's virtual-clock timing pass): per-step count of unfinished
/// prerequisites.  Steps with indegree 0 are immediately runnable.
/// Throws std::invalid_argument when a step references an unknown
/// dependency id.  The span overloads serve sliced step sequences
/// (recovery/slice.h) with the same checks.
std::vector<std::size_t> step_indegrees(std::span<const PlanStep> steps);
std::vector<std::size_t> step_indegrees(const RecoveryPlan& plan);

/// Reverse adjacency of the dependency DAG: dependents[i] lists the steps
/// unblocked when step i completes.  Throws std::invalid_argument when a
/// step references an unknown dependency id.
std::vector<std::vector<std::size_t>> step_dependents(
    std::span<const PlanStep> steps);
std::vector<std::vector<std::size_t>> step_dependents(const RecoveryPlan& plan);

}  // namespace car::recovery
