#include "cluster/failure.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"

namespace car::cluster {
namespace {

TEST(Failure, InjectNodeFailureListsExactlyTheNodeChunks) {
  util::Rng rng(11);
  const auto cfg = cfs2();
  const auto p = Placement::random(cfg.topology(), cfg.k, cfg.m, 50, rng);
  for (NodeId node = 0; node < p.topology().num_nodes(); ++node) {
    const auto scenario = inject_node_failure(p, node);
    EXPECT_EQ(scenario.failed_node, node);
    EXPECT_EQ(scenario.failed_rack, p.topology().rack_of(node));
    EXPECT_EQ(scenario.lost.size(), p.chunks_on_node(node).size());
    for (const auto& lost : scenario.lost) {
      EXPECT_EQ(p.node_of(lost.stripe, lost.chunk_index), node);
    }
  }
}

TEST(Failure, AtMostOneLostChunkPerStripe) {
  util::Rng rng(12);
  const auto cfg = cfs3();
  const auto p = Placement::random(cfg.topology(), cfg.k, cfg.m, 100, rng);
  for (NodeId node = 0; node < p.topology().num_nodes(); ++node) {
    const auto scenario = inject_node_failure(p, node);
    std::vector<StripeId> stripes;
    for (const auto& lost : scenario.lost) stripes.push_back(lost.stripe);
    std::sort(stripes.begin(), stripes.end());
    EXPECT_EQ(std::adjacent_find(stripes.begin(), stripes.end()),
              stripes.end())
        << "a single node failure must lose at most one chunk per stripe";
  }
}

TEST(Failure, RandomFailurePicksAnOccupiedNode) {
  util::Rng rng(13);
  const auto cfg = cfs1();
  const auto p = Placement::random(cfg.topology(), cfg.k, cfg.m, 5, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const auto scenario = inject_random_failure(p, rng);
    EXPECT_FALSE(scenario.lost.empty());
    EXPECT_EQ(p.chunks_on_node(scenario.failed_node).size(),
              scenario.lost.size());
  }
}

TEST(Failure, RandomFailureThrowsOnEmptyPlacement) {
  util::Rng rng(14);
  Placement p(Topology({2, 2, 2}), 3, 2);  // no stripes added
  EXPECT_THROW(inject_random_failure(p, rng), std::logic_error);
}

}  // namespace
}  // namespace car::cluster
