// CAR_EXCLUDES violation: calling a function that excludes a capability
// while holding it (the callee would self-deadlock taking it again).
// -Wthread-safety must reject this translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Pool {
 public:
  void trim() CAR_EXCLUDES(mu_) {
    car::util::MutexLock lock(mu_);
    idle_ = 0;
  }

  void trim_under_lock() {
    car::util::MutexLock lock(mu_);
    trim();  // BAD: trim() excludes mu_, held right here.
  }

 private:
  car::util::Mutex mu_;
  int idle_ CAR_GUARDED_BY(mu_) = 0;
};

[[maybe_unused]] void use() { Pool{}.trim_under_lock(); }

}  // namespace
