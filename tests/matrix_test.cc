#include "matrix/matrix.h"

#include <gtest/gtest.h>

#include "gf/gf256.h"
#include "util/rng.h"

namespace car::matrix {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  return m;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 0u);
  m(1, 2) = 7;
  EXPECT_EQ(m.at(1, 2), 7u);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 3), std::out_of_range);
  EXPECT_THROW(Matrix(2, 2, std::vector<std::uint8_t>(3)),
               std::invalid_argument);
}

TEST(Matrix, FromRowsAndEquality) {
  const auto m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(m(0, 1), 2u);
  EXPECT_EQ(m(1, 0), 3u);
  EXPECT_EQ(m, Matrix::from_rows({{1, 2}, {3, 4}}));
  EXPECT_NE(m, Matrix::from_rows({{1, 2}, {3, 5}}));
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IdentityIsMultiplicativeIdentity) {
  util::Rng rng(1);
  const auto m = random_matrix(4, 4, rng);
  EXPECT_EQ(Matrix::identity(4) * m, m);
  EXPECT_EQ(m * Matrix::identity(4), m);
}

TEST(Matrix, MultiplicationIsAssociative) {
  util::Rng rng(2);
  const auto a = random_matrix(3, 4, rng);
  const auto b = random_matrix(4, 5, rng);
  const auto c = random_matrix(5, 2, rng);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(Matrix, MultiplicationShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, ApplyMatchesMatrixProduct) {
  util::Rng rng(3);
  const auto a = random_matrix(4, 6, rng);
  std::vector<std::uint8_t> v(6);
  rng.fill_bytes(v);
  const auto out = a.apply(v);
  Matrix col(6, 1, std::vector<std::uint8_t>(v.begin(), v.end()));
  const auto expected = a * col;
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], expected(i, 0));
  EXPECT_THROW(a.apply(std::vector<std::uint8_t>(5)), std::invalid_argument);
}

TEST(Matrix, AdditionIsXor) {
  const auto a = Matrix::from_rows({{1, 2}, {4, 8}});
  const auto b = Matrix::from_rows({{3, 2}, {4, 1}});
  EXPECT_EQ(a + b, Matrix::from_rows({{2, 0}, {0, 9}}));
  EXPECT_THROW(a + Matrix(1, 2), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrips) {
  util::Rng rng(4);
  const auto a = random_matrix(3, 7, rng);
  EXPECT_EQ(a.transposed().transposed(), a);
  EXPECT_EQ(a.transposed()(2, 1), a(1, 2));
}

TEST(Matrix, SelectRows) {
  const auto a = Matrix::from_rows({{1, 1}, {2, 2}, {3, 3}});
  const std::vector<std::size_t> idx = {2, 0};
  const auto sel = a.select_rows(idx);
  EXPECT_EQ(sel, Matrix::from_rows({{3, 3}, {1, 1}}));
  const std::vector<std::size_t> bad = {5};
  EXPECT_THROW(a.select_rows(bad), std::out_of_range);
}

class MatrixInversion : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatrixInversion, RandomInvertibleMatricesRoundTrip) {
  const std::size_t n = GetParam();
  util::Rng rng(n * 31 + 7);
  int inverted = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = random_matrix(n, n, rng);
    if (!a.invertible()) continue;
    ++inverted;
    const auto inv = a.inverted();
    EXPECT_EQ(a * inv, Matrix::identity(n));
    EXPECT_EQ(inv * a, Matrix::identity(n));
  }
  // Random byte matrices over GF(256) are invertible with probability
  // ~prod(1 - 256^-i) > 0.99; expect a healthy majority.
  EXPECT_GE(inverted, 20);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixInversion,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(Matrix, SingularMatrixThrowsAndReportsNotInvertible) {
  // Two identical rows -> singular.
  const auto a = Matrix::from_rows({{1, 2}, {1, 2}});
  EXPECT_FALSE(a.invertible());
  EXPECT_THROW(a.inverted(), std::domain_error);
  EXPECT_EQ(a.rank(), 1u);
  const auto zero = Matrix(3, 3);
  EXPECT_FALSE(zero.invertible());
  EXPECT_EQ(zero.rank(), 0u);
}

TEST(Matrix, NonSquareInversionThrows) {
  EXPECT_THROW(Matrix(2, 3).inverted(), std::invalid_argument);
  EXPECT_FALSE(Matrix(2, 3).invertible());
}

TEST(Matrix, RankOfRandomProducts) {
  util::Rng rng(5);
  // rank(A*B) <= min(rank(A), rank(B)); with a thin middle dimension the
  // product's rank is capped by it.
  const auto a = random_matrix(5, 2, rng);
  const auto b = random_matrix(2, 5, rng);
  EXPECT_LE((a * b).rank(), 2u);
  EXPECT_EQ(Matrix::identity(6).rank(), 6u);
}

TEST(Matrix, ToStringFormatsHexRows) {
  const auto a = Matrix::from_rows({{0, 255}});
  EXPECT_EQ(a.to_string(), "[00 ff]\n");
}

}  // namespace
}  // namespace car::matrix
