// In-process multi-node cluster emulator.
//
// This is the repository's stand-in for the paper's 20-machine testbed: one
// emulated node per "machine", each owning real chunk buffers; transfers
// move real bytes through rate-limited links (node access links and
// oversubscribed rack core links, see emul/link.h); compute steps run the
// real GF(2^8) kernels.  Executing a RecoveryPlan therefore measures real
// wall-clock recovery time with a genuine transmission/computation split —
// the quantities behind the paper's Fig. 9 and Fig. 10.
//
// Node liveness: erase_node wipes a node's buffers but leaves the slot
// usable (the single-failure methodology — the replacement machine takes
// over the failed node's id), while drop_node marks the node *dead* for the
// rest of the run: its buffers are gone, every transfer/compute/store that
// touches it fails, and an execute() in flight aborts.  drop_node is how
// the fault-injection runtime (src/inject) models a second node dying
// mid-recovery before escalating to the recovery/multi re-plan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include <span>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "cluster/types.h"
#include "emul/clock.h"
#include "emul/link.h"
#include "recovery/plan.h"
#include "recovery/plan_arena.h"
#include "recovery/slice.h"
#include "rs/code.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace car::emul {

struct EmulConfig {
  /// Node <-> ToR link rate, bytes/second.  Deliberately scaled down from
  /// real hardware so experiments finish in seconds; only ratios matter.
  double node_bps = 400e6;

  /// Rack core-link rate = nodes_in_rack * node_bps / oversubscription,
  /// unless rack_link_bps overrides it.
  double oversubscription = 5.0;
  std::optional<double> rack_link_bps;

  /// Transfers are paged so concurrent flows interleave on shared links.
  std::uint64_t page_bytes = 128 * 1024;

  /// Upper bound on concurrently executing plan steps.  The worker pool is
  /// additionally capped by hardware_concurrency — see Cluster::execute.
  std::size_t max_parallel_steps = 512;

  /// kReal: link reservations map to the wall clock and recovery time is
  /// measured (including real GF compute durations).  kVirtual: nothing
  /// sleeps — reservations advance a simulated clock, compute time is
  /// modelled at virtual_gf_bps, and the reported times are deterministic
  /// (bit-identical across runs), so thousand-stripe sweeps finish in
  /// milliseconds.  Both modes move and verify real bytes.
  ClockMode clock_mode = ClockMode::kReal;

  /// Modelled GF(2^8) multiply-accumulate throughput charged per compute
  /// step in virtual-clock mode, bytes/second of input processed.
  /// Calibrated against the dispatched SIMD kernels (BENCH_gf.json:
  /// mul_region_acc at 1 MiB, ~1.92e10 B/s on an AVX2 host); re-derive with
  /// `bench/micro_gf --json` when hardware or kernels change.
  double virtual_gf_bps = 1.9e10;
};

/// Which event-queue engine drives the phase-2 timing replay.  Both engines
/// pop in the identical global (time, id) order, so every reported number
/// is bit-identical between them — kHeap is kept as the reference
/// implementation the differential tests and the CI scale-smoke diff
/// compare against.
enum class ReplayEngine : std::uint8_t {
  /// Per-shard bucketed calendar queues (emul/calendar_queue.h) merged by
  /// the lock-free epoch-based safe-window protocol.  The default.
  kCalendar,
  /// The PR-9 engine: per-shard binary heaps merged under a global mutex
  /// with condvar handoffs.
  kHeap,
};

/// Options for Cluster::execute_arena.
struct ArenaExecOptions {
  /// Stripe shards for the payload pass: base steps are partitioned by
  /// stripe % shards and the shards run concurrently.  shards > 1 requires
  /// a stripe-closed arena (PlanArena::stripe_closed) — windowed schedules
  /// add cross-stripe deps and must run with shards == 1.
  std::size_t shards = 1;

  /// Stripe shards for the timing replay (phase 2).  replay_shards > 1
  /// partitions stripes by stripe % replay_shards onto per-shard event
  /// heaps and merges them with the owner-advances safe-window protocol
  /// (see docs/architecture.md): link reservations and floating-point
  /// accumulation commit in exactly the sequential walk's global
  /// (time, id) order, so the reported timeline — makespan, compute_s,
  /// per-link byte totals — is bit-identical to replay_shards == 1 for
  /// every shard count.  Requires a stripe-closed arena (cross-stripe
  /// deps would couple the per-shard streams).
  std::size_t replay_shards = 1;

  /// Metadata-only mode: steps of unsampled stripes move no payload and
  /// run no GF compute — only byte *counts* flow through accounting and
  /// the timing replay, which are identical to real-byte execution.
  /// Stripes listed in sampled_stripes still carry real bytes end to end,
  /// so a seeded sample of the recovery can be verified bit-exactly.
  bool metadata_only = false;

  /// Stripes that stay real-byte in metadata-only mode (order/duplicates
  /// irrelevant).  Ignored — every stripe is real — when metadata_only is
  /// false.
  std::vector<cluster::StripeId> sampled_stripes;

  /// Event-queue engine for the timing replay.  Purely a performance
  /// choice: results are bit-identical either way.
  ReplayEngine replay_engine = ReplayEngine::kCalendar;
};

/// Producer-side watermark for Cluster::execute_arena_streaming: the plan
/// builder appends stripes into a pre-reserved arena and publishes how many
/// base steps are complete; the executor's payload shards and replay shards
/// consume rows strictly below the watermark while instantiation is still
/// running.  Single writer (the instantiating thread), many readers.
class ArenaStreamFeed {
 public:
  /// Publish that base steps [0, n_base) are fully appended (their columns,
  /// deps, and reverse deps will not change).  Monotone non-decreasing.
  void publish(std::uint64_t n_base) noexcept {
    published_.store(n_base, std::memory_order_release);
  }

  /// Producer is done: no further publish() calls will follow.  Must be
  /// called exactly once, after the arena is finalized, or the executor
  /// spins forever.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> published_{0};
  std::atomic<bool> closed_{false};
};

/// Outcome of executing one recovery plan.
struct ExecutionReport {
  double wall_s = 0.0;              // end-to-end makespan
  double compute_s = 0.0;           // summed measured compute durations
  double replacement_compute_s = 0.0;  // compute measured at the replacement
  std::uint64_t cross_rack_bytes = 0;
  std::uint64_t intra_rack_bytes = 0;
  std::vector<std::uint64_t> per_rack_cross_bytes;  // indexed by rack

  /// The paper's transmission-time proxy: wall time minus the replacement
  /// node's computation time.
  [[nodiscard]] double transmission_s() const noexcept {
    return wall_s - replacement_compute_s;
  }
};

class Cluster {
 public:
  Cluster(cluster::Topology topology, EmulConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] const cluster::Topology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] const EmulConfig& config() const noexcept { return config_; }

  /// The shared timeline every link reservation is expressed on.  Exposed
  /// for runtimes that drive step timing themselves (src/inject).
  [[nodiscard]] EmulClock& clock() noexcept;

  /// Store a chunk replica on a node (overwrites an existing copy).
  /// Throws std::out_of_range for a bad node id or when the buffer key
  /// cannot represent the ids (stripe >= 2^39 or chunk_index >= 2^24), and
  /// util::StateError when the node has been dropped.
  void store_chunk(cluster::NodeId node, cluster::StripeId stripe,
                   std::size_t chunk_index, rs::Chunk data);

  /// Fetch a chunk stored on a node, or nullptr when absent.  Throws
  /// std::out_of_range for ids outside the buffer-key range (see
  /// store_chunk).
  [[nodiscard]] const rs::Chunk* find_chunk(cluster::NodeId node,
                                            cluster::StripeId stripe,
                                            std::size_t chunk_index) const;

  /// Fetch a step-output buffer (e.g. a recovered chunk) on a node.
  [[nodiscard]] const rs::Chunk* find_step_output(cluster::NodeId node,
                                                  std::size_t step_id) const;

  /// Generic buffer access by plan reference (chunk or step output), for
  /// external step runtimes.  find_buffer returns nullptr when absent;
  /// put_buffer throws util::StateError when the node has been dropped.
  [[nodiscard]] const rs::Chunk* find_buffer(
      cluster::NodeId node, const recovery::BufferRef& ref) const;
  void put_buffer(cluster::NodeId node, const recovery::BufferRef& ref,
                  rs::Chunk data);

  /// Ranged buffer write for slice-level execution: ensure the buffer at
  /// `ref` on `node` holds exactly `full_size` bytes (materialised from the
  /// buffer pool when absent or mis-sized) and copy `data` into
  /// [offset, offset + data.size()).  Slice writers of one buffer serialise
  /// on the node's store lock; distinct slices touch disjoint ranges, so a
  /// plan whose slices cover the chunk assembles it exactly.  Throws
  /// std::out_of_range for a bad node id, util::StateError when the node
  /// has been dropped, and util::CheckError when the range exceeds
  /// full_size.
  void write_buffer_range(cluster::NodeId node, const recovery::BufferRef& ref,
                          std::uint64_t full_size, std::uint64_t offset,
                          std::span<const std::uint8_t> data);

  /// The buffer pool backing all transfer/compute staging and store
  /// buffers created by execution (see util/buffer_pool.h).  Exposed so
  /// external runtimes (src/inject) stage through the same pool and tests
  /// can assert the staging high-water mark.
  [[nodiscard]] util::BufferPool& buffer_pool() noexcept;

  /// Drop every buffer a node holds (single node failure).  The node slot
  /// stays usable — the replacement machine takes over its id.
  void erase_node(cluster::NodeId node);

  /// Permanently fail a node: wipe its buffers and mark it dead for the
  /// rest of the run.  Idempotent — dropping an already-dropped node is a
  /// no-op.  Throws std::out_of_range for a bad id and util::CheckError
  /// when the node holds a replacement guard (see add_replacement_guard) —
  /// of ANY generation, not just the newest: losing a recovery destination
  /// is not a recoverable scenario — pick a fresh replacement and re-plan
  /// instead.  An execute() in flight observes the drop and aborts with
  /// util::StateError.
  void drop_node(cluster::NodeId node);

  /// True when drop_node(node) has been called.
  [[nodiscard]] bool is_dropped(cluster::NodeId node) const;

  /// Protect a recovery destination: while a node holds at least one
  /// guard, drop_node on it throws.  Guards are counted (they nest) and
  /// independent per node, so every generation of a rolling multi-failure
  /// recovery keeps its replacement protected — re-planning onto a second
  /// replacement must not silently unguard the first, whose published
  /// outputs the resumed plan still reads.  Each node's first acquisition
  /// stamps a monotonically increasing generation number, echoed in the
  /// drop_node diagnostic.  execute() guards its plan's replacement
  /// automatically; external runtimes (src/inject, src/rebuild) hold
  /// guards around their own execution.  Returns the node's generation
  /// stamp.  Throws std::out_of_range for a bad id and util::CheckError
  /// when the node is already dropped.
  std::uint64_t add_replacement_guard(cluster::NodeId node);

  /// Release one guard on `node` (acquired via add_replacement_guard).
  /// Throws util::CheckError when the node holds no guard.
  void remove_replacement_guard(cluster::NodeId node);

  /// Nodes currently holding at least one replacement guard (ascending).
  [[nodiscard]] std::vector<cluster::NodeId> guarded_replacements() const;

  /// Remove every step-output buffer cluster-wide.  Called between a
  /// cancelled plan and its re-plan so the fresh plan's dense step ids
  /// cannot collide with stale partial results.
  void clear_step_outputs();

  /// The link path a transfer src -> dst traverses (loopback when
  /// src == dst).  Hops stay owned by the cluster; the path is valid for
  /// the cluster's lifetime.
  [[nodiscard]] LinkPath path(cluster::NodeId src, cluster::NodeId dst) const;

  /// Direct link handles, for arming fault windows (inject::FaultPlan).
  /// All throw std::out_of_range on a bad id.
  [[nodiscard]] SerialLink& node_up_link(cluster::NodeId node);
  [[nodiscard]] SerialLink& node_down_link(cluster::NodeId node);
  [[nodiscard]] SerialLink& rack_up_link(cluster::RackId rack);
  [[nodiscard]] SerialLink& rack_down_link(cluster::RackId rack);

  /// Generate random stripes per the placement, encode them with `code`,
  /// and store each chunk on its host node.  Returns the full original
  /// stripes (stripe -> chunk index -> bytes) for later verification.
  std::vector<std::vector<rs::Chunk>> populate(
      const cluster::Placement& placement, const rs::Code& code,
      std::uint64_t chunk_size, util::Rng& rng);

  /// Deterministic per-stripe data seed: the content of stripe `stripe` in
  /// a populate_sampled run is a pure function of (seed, stripe), never of
  /// which other stripes are materialised.  This is what makes a
  /// metadata-only run's sampled stripes byte-identical to the same
  /// stripes in a full real-byte run.
  [[nodiscard]] static std::uint64_t stripe_seed(
      std::uint64_t seed, cluster::StripeId stripe) noexcept;

  /// Populate only `stripes` (each seeded by stripe_seed(seed, s)), encode
  /// them with `code`, and store each chunk on its host node.  Returns
  /// stripe -> full original stripe for later verification.  Duplicate ids
  /// in `stripes` are populated once.  Throws util::CheckError on a zero
  /// chunk size or a stripe id outside the placement.
  std::unordered_map<cluster::StripeId, std::vector<rs::Chunk>>
  populate_sampled(const cluster::Placement& placement, const rs::Code& code,
                   std::uint64_t chunk_size, std::uint64_t seed,
                   std::span<const cluster::StripeId> stripes);

  /// Execute a recovery plan: run every transfer through the emulated links
  /// and every compute step on real buffers.  Steps run on a bounded worker
  /// pool — never more than min(max_parallel_steps, hardware_concurrency)
  /// threads regardless of plan size (see emul/executor.h); under
  /// ClockMode::kVirtual timing is additionally replayed by a deterministic
  /// sequential pass so reported times are bit-identical across runs.
  /// After success the recovered chunks are stored on the replacement node
  /// both as step outputs and as regular chunks.  Throws std::runtime_error
  /// when a referenced buffer is missing, a transfer's declared size
  /// disagrees with the stored payload, a step touches a dropped node, or a
  /// node is dropped mid-execution (abort), and std::invalid_argument on a
  /// malformed DAG (unknown dependency or cycle).  Internally lowers the
  /// plan onto a degenerate one-slice-per-step grid and runs the sliced
  /// core below — the identical computation, byte for byte.
  ExecutionReport execute(const recovery::RecoveryPlan& plan);

  /// Execute a slice-lowered plan (recovery/slice.h): same semantics as
  /// above, but transfer and compute steps run at slice granularity, so
  /// cross-rack shipping of slice s overlaps aggregation of slice s+1.
  /// Traffic accounting equals the base plan's bit for bit (slices of one
  /// transfer sum to exactly chunk_size).  All staging goes through the
  /// buffer pool — steady-state execution allocates nothing per slice.
  ExecutionReport execute(const recovery::SlicePlan& plan);

  /// Execute a columnar arena plan (recovery/plan_arena.h) without ever
  /// materialising per-slice step objects.  Two passes:
  ///
  ///   1. payload movement — base steps partitioned stripe % shards across
  ///      concurrent workers; real bytes move (and real GF kernels run)
  ///      only for stripes the options mark real, byte accounting always;
  ///   2. a sequential deterministic timing replay over the sliced id grid
  ///      — the identical (start time, id) min-heap walk execute() uses, so
  ///      for the same plan the reported timeline, per-link occupancies,
  ///      and byte totals are bit-identical to execute(slice_plan(...))
  ///      and invariant in both the shard count and metadata mode.
  ///
  /// Requires ClockMode::kVirtual (throws util::StateError otherwise — a
  /// wall-clock pass cannot skip payloads without changing what it
  /// measures) and, for shards > 1, a stripe-closed arena
  /// (util::CheckError).  Other failure modes match execute().
  ExecutionReport execute_arena(const recovery::PlanArena& plan,
                                const ArenaExecOptions& options = {});

  /// Streaming variant of execute_arena: runs concurrently with the plan
  /// builder.  `plan` must already be reserve()d to its exact final extents
  /// (so no column ever reallocates); the producer appends stripes,
  /// publishes its progress through `feed`, finalizes the arena, and calls
  /// feed.close().  Payload shards process base steps as they are
  /// published, and the replay shards drain the t_start event frontier of
  /// published stripes immediately — everything later than t_start is
  /// globally ordered after rows still being appended, so it waits for
  /// close().  Every reported number is bit-identical to the barrier
  /// execute_arena on the finished arena.  Requires options.metadata_only
  /// or an empty plan of real stripes to verify against populated chunks
  /// exactly like execute_arena; other preconditions match execute_arena.
  ExecutionReport execute_arena_streaming(const recovery::PlanArena& plan,
                                          const ArenaExecOptions& options,
                                          ArenaStreamFeed& feed);

 private:
  /// Shared core of execute_arena / execute_arena_streaming; feed == nullptr
  /// runs the barrier (fully-built-plan) mode.
  ExecutionReport execute_arena_impl(const recovery::PlanArena& plan,
                                     const ArenaExecOptions& options,
                                     ArenaStreamFeed* feed);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  cluster::Topology topology_;
  EmulConfig config_;
};

}  // namespace car::emul
