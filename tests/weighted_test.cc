#include "recovery/weighted.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "recovery/metrics.h"

namespace car::recovery {
namespace {

using cluster::Placement;

struct Scenario {
  Placement placement;
  cluster::FailureScenario failure;
  std::vector<StripeCensus> censuses;
};

Scenario make_scenario(const cluster::CfsConfig& cfg, std::size_t stripes,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  auto placement =
      Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  auto failure = cluster::inject_random_failure(placement, rng);
  auto censuses = build_censuses(placement, failure);
  return {std::move(placement), std::move(failure), std::move(censuses)};
}

TEST(WeightedBalancer, Validation) {
  auto s = make_scenario(cluster::cfs1(), 10, 1);
  EXPECT_THROW(balance_weighted(s.placement, {}, {1, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(balance_weighted(s.placement, s.censuses, {1, 1}),
               std::invalid_argument);
  EXPECT_THROW(balance_weighted(s.placement, s.censuses, {1, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(balance_weighted(s.placement, s.censuses, {1, -2, 1}),
               std::invalid_argument);
}

TEST(WeightedBalancer, UniformBandwidthMatchesUnweightedBehaviour) {
  auto s = make_scenario(cluster::cfs2(), 100, 2);
  const std::vector<double> uniform(s.placement.topology().num_racks(), 1.0);
  const auto weighted = balance_weighted(s.placement, s.censuses, uniform, 50);
  const auto unweighted = balance_greedy(s.placement, s.censuses, {50});

  // Same total traffic and essentially the same bottleneck (both minimise
  // the maximum per-rack chunk count when bandwidths are equal).
  const auto racks = s.placement.topology().num_racks();
  const auto tw = car_traffic(weighted.solutions, racks,
                              s.failure.failed_rack);
  const auto tu = car_traffic(unweighted.solutions, racks,
                              s.failure.failed_rack);
  EXPECT_EQ(tw.total_chunks(), tu.total_chunks());

  std::size_t max_w = 0, max_u = 0;
  for (cluster::RackId i = 0; i < racks; ++i) {
    if (i == s.failure.failed_rack) continue;
    max_w = std::max(max_w, tw.per_rack_chunks[i]);
    max_u = std::max(max_u, tu.per_rack_chunks[i]);
  }
  EXPECT_EQ(max_w, max_u);
}

class WeightedSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(WeightedSweep, BottleneckTraceIsMonotoneAndTrafficInvariant) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  auto s = make_scenario(cfg, 100, std::get<1>(GetParam()));
  // Heterogeneous uplinks: rack i has bandwidth 1 + i/2.
  std::vector<double> bandwidth;
  for (std::size_t i = 0; i < s.placement.topology().num_racks(); ++i) {
    bandwidth.push_back(1.0 + 0.5 * static_cast<double>(i));
  }
  const auto result =
      balance_weighted(s.placement, s.censuses, bandwidth, 100);

  for (std::size_t i = 1; i < result.bottleneck_trace.size(); ++i) {
    EXPECT_LE(result.bottleneck_trace[i],
              result.bottleneck_trace[i - 1] + 1e-12);
  }

  const auto racks = s.placement.topology().num_racks();
  const auto initial = plan_car_initial(s.placement, s.censuses);
  EXPECT_EQ(car_traffic(result.solutions, racks, s.failure.failed_rack)
                .total_chunks(),
            car_traffic(initial, racks, s.failure.failed_rack)
                .total_chunks());
  EXPECT_NEAR(result.final_bottleneck(),
              bottleneck_drain(result.solutions, bandwidth,
                               s.failure.failed_rack),
              1e-12);
}

TEST_P(WeightedSweep, EverySolutionRemainsValidMinimal) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  auto s = make_scenario(cfg, 60, std::get<1>(GetParam()) + 5);
  std::vector<double> bandwidth(s.placement.topology().num_racks(), 1.0);
  bandwidth.back() = 4.0;
  const auto result = balance_weighted(s.placement, s.censuses, bandwidth, 60);
  for (std::size_t j = 0; j < s.censuses.size(); ++j) {
    EXPECT_TRUE(is_valid_minimal(s.censuses[j],
                                 result.solutions[j].rack_set));
  }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, WeightedSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3u, 71u)));

TEST(WeightedBalancer, ShiftsLoadTowardFastRacks) {
  // A rack with 10x the bandwidth should end up carrying at least as many
  // partial chunks as any slow rack, whenever substitutions are possible.
  auto s = make_scenario(cluster::cfs3(), 150, 9);
  const auto racks = s.placement.topology().num_racks();
  std::vector<double> bandwidth(racks, 1.0);
  // Pick a fast rack that is not the failed one.
  cluster::RackId fast = s.failure.failed_rack == 0 ? 1 : 0;
  bandwidth[fast] = 10.0;

  const auto result =
      balance_weighted(s.placement, s.censuses, bandwidth, 300);
  const auto traffic = car_traffic(result.solutions, racks,
                                   s.failure.failed_rack);
  for (cluster::RackId i = 0; i < racks; ++i) {
    if (i == s.failure.failed_rack || i == fast) continue;
    // Drain-time balance: fast rack's time t/10 should not exceed any slow
    // rack's time t/1 by the end (within one substitution quantum).
    EXPECT_LE(static_cast<double>(traffic.per_rack_chunks[fast]) / 10.0,
              static_cast<double>(traffic.per_rack_chunks[i]) + 1.0)
        << "rack " << i;
  }
  EXPECT_LE(result.final_bottleneck(), result.initial_bottleneck() + 1e-12);
}

}  // namespace
}  // namespace car::recovery
