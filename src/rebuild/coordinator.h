// Self-healing rebuild control plane: scan, prioritize, overlap.
//
// RebuildCoordinator turns a schedule of membership events (node failures
// at virtual times) into a finished rebuild:
//
//   1. Membership — the first failed node becomes the primary replacement
//      (its slot is wiped and re-used as the rebuild target, the paper's
//      single-replacement methodology) and is guarded against further
//      failure (emul::Cluster::add_replacement_guard); every later event
//      drops its node for good.  A crash aimed at the replacement — of any
//      re-plan generation — is rejected with a CAR_CHECK diagnostic.
//   2. Scan — at every membership change the coordinator rebuilds the
//      exposure census (recovery/exposure.h) from the placement, the
//      cumulative failed set, and the chunks already recovered: a pure
//      metadata pass, DAOS-style, that never touches payload bytes.
//   3. Prioritize — the census feeds a RebuildQueue ordered most-exposed
//      first (tolerance_left, then estimated cross-rack cost, then stripe
//      id), so a second failure that turns a queued fresh-degraded stripe
//      into a most-exposed one preempts everything behind it.
//   4. Overlap — up to max_inflight same-signature batches run concurrently
//      on one BatchDriver timeline; each batch is planned by recovery/multi
//      (CAR partial decoding or the RR baseline), statically gated by
//      recovery/validate, and admitted only when the gate passes.
//   5. Re-plan — when a failure lands mid-rebuild the driver cancels every
//      in-flight batch, publishes the outputs that fully delivered, and the
//      coordinator re-scans and re-dispatches the remainder at the new
//      epoch — resumed chunks are recomputed from surviving placement
//      chunks, so the final bytes are identical to a sequential
//      one-failure-at-a-time recovery (the differential-test invariant).
//
// Everything is deterministic: one virtual timeline, seeded RNGs, and a
// canonical EventLog, so the same events + options reproduce a
// byte-identical log on any machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "emul/cluster.h"
#include "inject/event_log.h"
#include "inject/fault.h"
#include "inject/runtime.h"
#include "rebuild/driver.h"
#include "rebuild/queue.h"
#include "recovery/exposure.h"
#include "recovery/plan_template.h"
#include "rs/code.h"
#include "util/attributes.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace car::rebuild {

/// Recovery planner family for every batch of a run.
enum class Strategy : std::uint8_t {
  kCar,  // rack selection + partial decoding + balancing (recovery/multi)
  kRr,   // ship k survivors to the replacement and decode there
};

[[nodiscard]] const char* to_string(Strategy strategy) noexcept;

/// One membership event: `node` fails `at_s` virtual seconds after the
/// run starts.  The first event's node doubles as the rebuild target.
struct FailureEvent {
  cluster::NodeId node = 0;
  double at_s = 0.0;
};

struct RebuildOptions {
  Strategy strategy = Strategy::kCar;
  std::uint64_t chunk_bytes = 64 * 1024;
  /// Slice-pipelined execution granularity; 0 = chunk-granular.
  std::uint64_t slice_bytes = 0;
  /// Stripes dispatched per batch (same failure signature per batch).
  std::size_t batch_stripes = 4;
  /// Concurrent in-flight batches on the shared timeline.
  std::size_t max_inflight = 2;
  std::uint64_t seed = 7;
  /// Worker threads for the metadata scans (exposure census at each epoch,
  /// per-batch multi-failure census).  Sharded scans are bit-identical to
  /// serial ones for every count (recovery/exposure.h, recovery/multi.h),
  /// so this is purely a host-time knob.
  std::size_t scan_shards = 1;
  inject::RetryPolicy retry;
  /// Link/transfer adversity for the driver.  Node crashes are NOT allowed
  /// here — failures are the `events` argument of run().
  inject::FaultPlan faults;
  inject::DataPolicy data;
};

/// One dispatched batch's lifecycle, in dispatch order.
struct BatchRecord {
  std::size_t id = 0;
  std::size_t stripes = 0;
  /// Exposure tier at dispatch: the minimum tolerance_left in the batch
  /// (0 = most exposed — one more failure would lose data).
  std::size_t tier = 0;
  double dispatched_at = 0.0;
  double completed_at = 0.0;  // meaningful when !cancelled
  bool cancelled = false;
};

struct RebuildMetrics {
  /// First event to last published chunk, virtual seconds.
  double makespan_s = 0.0;
  /// Exposure windows: a stripe is exposed while any of its chunks has no
  /// live replica anywhere.  total sums per-stripe window lengths; max is
  /// the longest single window.
  double total_exposure_s = 0.0;
  double max_exposure_s = 0.0;
  /// At-risk windows: the stripe's tolerance is exhausted (one more
  /// failure loses data) — the exposure-time-at-risk study metric.
  double total_at_risk_s = 0.0;
  double max_at_risk_s = 0.0;
  std::size_t scans = 0;
  std::size_t batches_dispatched = 0;
  std::size_t batches_cancelled = 0;
  /// Stripes whose batch was cancelled and that re-entered the queue.
  std::size_t stripes_requeued = 0;
  /// Planning-path host time (std::chrono, NOT virtual seconds — the only
  /// host-clock numbers in the result): metadata scans (exposure census +
  /// per-batch multi census) and plan construction (balancing + the
  /// template-cached plan build).
  double scan_host_s = 0.0;
  double plan_host_s = 0.0;
  /// Plan-template cache counters across every batch of the run
  /// (recovery/plan_template.h): hits + misses = plans instantiated from a
  /// template; misses = structural signatures actually planned.
  std::size_t template_cache_hits = 0;
  std::size_t template_cache_misses = 0;
};

struct RebuildResult {
  cluster::NodeId replacement = 0;
  std::vector<cluster::NodeId> failed_nodes;  // cumulative, event order
  inject::EventLog log;
  emul::ExecutionReport report;
  inject::RunStats stats;
  RebuildMetrics metrics;
  /// Every chunk recovered onto the replacement, sorted by (stripe, chunk).
  std::vector<PublishedChunk> recovered;
  std::vector<BatchRecord> batches;  // dispatch order
};

/// One-shot orchestrator: construct, call run() once.  The cluster must be
/// populated (or carry a metadata DataPolicy) and use a virtual clock.
class RebuildCoordinator {
 public:
  RebuildCoordinator(emul::Cluster& cluster,
                     const cluster::Placement& placement, const rs::Code& code,
                     RebuildOptions options);

  /// Execute the failure schedule to a fully rebuilt cluster.  Events must
  /// be non-empty, time-ordered (non-decreasing), and name distinct live
  /// nodes; an event targeting the replacement (the first event's node)
  /// propagates the cluster's replacement-guard CAR_CHECK.  Throws
  /// util::StateError when a batch plan fails static validation or a
  /// transfer exhausts its retries.
  RebuildResult run(std::span<const FailureEvent> events) CAR_BOUNDARY;

 private:
  struct DispatchedBatch {
    std::vector<cluster::StripeId> stripes;
    std::size_t record_index = 0;  // into result_.batches
    std::vector<PublishedChunk> outputs;
  };

  /// Re-scan at a membership epoch: census -> windows -> queue.reset.
  void scan_epoch(std::size_t epoch) CAR_EXCLUDES(state_mu_);
  /// Pop one batch, plan it, validate it, admit it.  False when the queue
  /// is empty.
  bool dispatch_one(BatchDriver& driver) CAR_EXCLUDES(state_mu_);
  /// Drive the loop until the deadline (or drained, with nullopt),
  /// refilling batch slots as they free up.
  void pump(BatchDriver& driver, std::optional<double> deadline)
      CAR_EXCLUDES(state_mu_);
  void on_batch_complete(const BatchDriver& driver, std::size_t batch_id)
      CAR_EXCLUDES(state_mu_);
  /// Close the exposure/at-risk windows of stripes that are now fully
  /// re-protected.
  void close_windows(std::span<const cluster::StripeId> stripes, double now)
      CAR_REQUIRES(state_mu_);
  [[nodiscard]] bool stripe_recovered(cluster::StripeId stripe) const
      CAR_REQUIRES(state_mu_);

  emul::Cluster& cluster_;
  const cluster::Placement& placement_;
  const rs::Code& code_;
  RebuildOptions options_;
  RebuildQueue queue_;
  /// Plan templates persist across batches: same-signature batches (the
  /// common case under one failure epoch) reuse each other's templates, so
  /// per-batch planning cost collapses to id remapping after the first
  /// batch of a signature.
  recovery::PlanTemplateCache template_cache_;
  util::Rng rr_rng_;
  bool ran_ = false;
  std::vector<cluster::NodeId> failed_;
  cluster::NodeId replacement_ = 0;
  cluster::RackId replacement_rack_ = 0;
  std::size_t next_batch_id_ = 0;
  std::unordered_map<std::size_t, DispatchedBatch> inflight_batches_;
  RebuildResult result_;

  /// Scan/completion state shared between the scan pass and batch
  /// completion handling (PR 7 lock discipline; the coordinator itself is
  /// single-threaded today, but the census consumers need not be).
  mutable util::Mutex state_mu_;
  recovery::RecoveredSet recovered_ CAR_GUARDED_BY(state_mu_);
  std::unordered_map<cluster::StripeId, double> exposure_since_
      CAR_GUARDED_BY(state_mu_);
  std::unordered_map<cluster::StripeId, double> at_risk_since_
      CAR_GUARDED_BY(state_mu_);
};

}  // namespace car::rebuild
