#include "emul/cluster.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/configs.h"
#include "emul/link.h"
#include "recovery/balancer.h"
#include "recovery/scheduler.h"
#include "util/check.h"

namespace car::emul {
namespace {

using cluster::Topology;

EmulConfig fast_config() {
  EmulConfig cfg;
  cfg.node_bps = 200e6;  // keep tests quick
  cfg.oversubscription = 4.0;
  cfg.page_bytes = 16 * 1024;
  return cfg;
}

EmulConfig virtual_config() {
  EmulConfig cfg = fast_config();
  cfg.clock_mode = ClockMode::kVirtual;
  return cfg;
}

/// Hand-built single-transfer plan (src -> dst) for one stored chunk.
recovery::RecoveryPlan one_transfer_plan(cluster::NodeId src,
                                         cluster::NodeId dst,
                                         std::uint64_t bytes) {
  recovery::RecoveryPlan plan;
  plan.chunk_size = bytes;
  recovery::PlanStep step;
  step.id = 0;
  step.kind = recovery::StepKind::kTransfer;
  step.src = src;
  step.dst = dst;
  step.payload = recovery::BufferRef::chunk(0, 0);
  step.bytes = bytes;
  plan.steps.push_back(std::move(step));
  return plan;
}

TEST(SerialLink, TransmissionTakesBytesOverRate) {
  SerialLink link(1e6);  // 1 MB/s
  const auto t0 = std::chrono::steady_clock::now();
  link.transmit(100'000);  // 0.1 s
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  EXPECT_GE(dt.count(), 0.095);
  EXPECT_LT(dt.count(), 0.5);  // generous upper bound for CI noise
  EXPECT_EQ(link.bytes_transmitted(), 100'000u);
}

TEST(SerialLink, ConcurrentSendersSerialise) {
  SerialLink link(1e6);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread a([&] { link.transmit(50'000); });
  std::thread b([&] { link.transmit(50'000); });
  a.join();
  b.join();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  EXPECT_GE(dt.count(), 0.095);  // 100 KB through 1 MB/s, shared
  EXPECT_EQ(link.bytes_transmitted(), 100'000u);
}

TEST(SerialLink, RejectsNonPositiveRate) {
  EXPECT_THROW(SerialLink(0.0), std::invalid_argument);
  EXPECT_THROW(SerialLink(-5.0), std::invalid_argument);
}

TEST(SerialLink, ReserveAccumulatesOnTimeline) {
  SerialLink link(1e6);  // 1 MB/s
  EXPECT_DOUBLE_EQ(link.reserve(0.0, 500'000), 0.5);
  EXPECT_DOUBLE_EQ(link.reserve(0.0, 500'000), 1.0);  // queued behind first
  EXPECT_DOUBLE_EQ(link.reserve(2.0, 1'000'000), 3.0);  // idle gap skipped
  EXPECT_EQ(link.bytes_transmitted(), 2'000'000u);
}

TEST(Cluster, StoreFindEraseChunks) {
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.store_chunk(1, 7, 3, rs::Chunk{1, 2, 3});
  const auto* chunk = cluster.find_chunk(1, 7, 3);
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(*chunk, (rs::Chunk{1, 2, 3}));
  EXPECT_EQ(cluster.find_chunk(0, 7, 3), nullptr);
  cluster.erase_node(1);
  EXPECT_EQ(cluster.find_chunk(1, 7, 3), nullptr);
  EXPECT_THROW(cluster.store_chunk(9, 0, 0, {}), std::out_of_range);
  EXPECT_THROW(cluster.erase_node(9), std::out_of_range);
}

TEST(Cluster, PopulateStoresEveryChunkOnItsHost) {
  util::Rng rng(41);
  const auto cfg = cluster::cfs1();
  auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 5, rng);
  const rs::Code code(cfg.k, cfg.m);
  Cluster cluster(cfg.topology(), fast_config());
  const auto originals = cluster.populate(placement, code, 2048, rng);
  ASSERT_EQ(originals.size(), 5u);
  for (cluster::StripeId s = 0; s < 5; ++s) {
    ASSERT_EQ(originals[s].size(), cfg.k + cfg.m);
    for (std::size_t c = 0; c < cfg.k + cfg.m; ++c) {
      const auto* stored = cluster.find_chunk(placement.node_of(s, c), s, c);
      ASSERT_NE(stored, nullptr);
      EXPECT_EQ(*stored, originals[s][c]);
    }
  }
}

struct RecoveryFixture {
  cluster::CfsConfig cfg;
  cluster::Placement placement;
  rs::Code code;
  Cluster cluster;
  std::vector<std::vector<rs::Chunk>> originals;
  cluster::FailureScenario scenario;
  std::vector<recovery::StripeCensus> censuses;

  RecoveryFixture(int cfg_index, std::uint64_t seed, std::size_t stripes,
                  std::uint64_t chunk_size, EmulConfig emul = fast_config())
      : cfg(cluster::paper_configs()[cfg_index]),
        placement(make_placement(cfg, stripes, seed)),
        code(cfg.k, cfg.m),
        cluster(cfg.topology(), emul) {
    util::Rng rng(seed + 1);
    originals = cluster.populate(placement, code, chunk_size, rng);
    scenario = cluster::inject_random_failure(placement, rng);
    cluster.erase_node(scenario.failed_node);
    censuses = recovery::build_censuses(placement, scenario);
  }

  static cluster::Placement make_placement(const cluster::CfsConfig& cfg,
                                           std::size_t stripes,
                                           std::uint64_t seed) {
    util::Rng rng(seed);
    return cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes,
                                      rng);
  }

  void verify_recovered() {
    for (const auto& lost : scenario.lost) {
      const auto* recovered = cluster.find_chunk(scenario.failed_node,
                                                 lost.stripe, lost.chunk_index);
      ASSERT_NE(recovered, nullptr)
          << "stripe " << lost.stripe << " chunk " << lost.chunk_index;
      EXPECT_EQ(*recovered, originals[lost.stripe][lost.chunk_index]);
    }
  }
};

TEST(ClusterExecute, CarPlanRecoversEveryLostChunkBitExactly) {
  RecoveryFixture f(0, 101, 12, 64 * 1024);
  const auto balanced = recovery::balance_greedy(f.placement, f.censuses, {50});
  const auto plan = recovery::build_car_plan(
      f.placement, f.code, balanced.solutions, 64 * 1024,
      f.scenario.failed_node);
  const auto report = f.cluster.execute(plan);
  f.verify_recovered();
  EXPECT_GT(report.wall_s, 0.0);
  EXPECT_GT(report.compute_s, 0.0);
  EXPECT_EQ(report.cross_rack_bytes, plan.cross_rack_bytes());
  EXPECT_EQ(report.intra_rack_bytes, plan.intra_rack_bytes());
  EXPECT_EQ(report.per_rack_cross_bytes,
            plan.per_rack_cross_bytes(f.placement.topology()));
}

TEST(ClusterExecute, RrPlanRecoversEveryLostChunkBitExactly) {
  RecoveryFixture f(1, 202, 10, 64 * 1024);
  util::Rng rng(7);
  const auto rr = recovery::plan_rr(f.placement, f.censuses, rng);
  const auto plan = recovery::build_rr_plan(f.placement, f.code, rr, 64 * 1024,
                                            f.scenario.failed_node);
  const auto report = f.cluster.execute(plan);
  f.verify_recovered();
  EXPECT_EQ(report.cross_rack_bytes, plan.cross_rack_bytes());
}

TEST(ClusterExecute, Cfs3CarAndRrAgreeOnRecoveredBytes) {
  RecoveryFixture f(2, 303, 8, 32 * 1024);
  const auto balanced = recovery::balance_greedy(f.placement, f.censuses, {50});
  const auto plan = recovery::build_car_plan(
      f.placement, f.code, balanced.solutions, 32 * 1024,
      f.scenario.failed_node);
  f.cluster.execute(plan);
  f.verify_recovered();
}

TEST(ClusterExecute, MissingBufferRaises) {
  RecoveryFixture f(0, 404, 4, 4 * 1024);
  const auto solutions = recovery::plan_car_initial(f.placement, f.censuses);
  const auto plan = recovery::build_car_plan(
      f.placement, f.code, solutions, 4 * 1024, f.scenario.failed_node);
  // Erase a node that still hosts survivor chunks referenced by the plan:
  // pick the first aggregator (source of the first transfer or compute).
  cluster::NodeId victim = f.scenario.failed_node;
  for (const auto& step : plan.steps) {
    if (step.kind == recovery::StepKind::kTransfer &&
        step.src != f.scenario.failed_node) {
      victim = step.src;
      break;
    }
    if (step.kind == recovery::StepKind::kCompute &&
        step.node != f.scenario.failed_node) {
      victim = step.node;
      break;
    }
  }
  ASSERT_NE(victim, f.scenario.failed_node);
  f.cluster.erase_node(victim);
  EXPECT_THROW(f.cluster.execute(plan), std::runtime_error);
}

TEST(Cluster, RejectsOutOfRangeBufferIds) {
  Cluster cluster(Topology({2, 2}), fast_config());
  // chunk_index >= 2^24 or stripe >= 2^39 cannot be packed into a buffer
  // key and must be rejected instead of silently colliding.
  EXPECT_THROW(cluster.store_chunk(0, 0, 1ull << 24, rs::Chunk{1}),
               std::out_of_range);
  EXPECT_THROW(cluster.store_chunk(0, 1ull << 39, 0, rs::Chunk{1}),
               std::out_of_range);
  EXPECT_THROW((void)cluster.find_chunk(0, 0, 1ull << 24), std::out_of_range);
  EXPECT_THROW((void)cluster.find_chunk(0, 1ull << 39, 0), std::out_of_range);
}

TEST(Cluster, WideChunkIndexDoesNotCollideAcrossStripes) {
  // Regression: the old key packed (stripe << 20 | index), so stripe 0 /
  // index 2^20 collided with stripe 1 / index 0 and its *step-output*
  // cousins near bit 63.
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.store_chunk(0, 0, 1ull << 20, rs::Chunk{1, 1});
  cluster.store_chunk(0, 1, 0, rs::Chunk{2, 2});
  const auto* wide = cluster.find_chunk(0, 0, 1ull << 20);
  const auto* narrow = cluster.find_chunk(0, 1, 0);
  ASSERT_NE(wide, nullptr);
  ASSERT_NE(narrow, nullptr);
  EXPECT_EQ(*wide, (rs::Chunk{1, 1}));
  EXPECT_EQ(*narrow, (rs::Chunk{2, 2}));
}

TEST(ClusterExecute, TransferSizeMismatchRaises) {
  // The plan declares 2048 bytes but the stored payload holds 1024: traffic
  // accounting would silently diverge from the bytes actually moved, so the
  // emulator must refuse.
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.store_chunk(0, 0, 0, rs::Chunk(1024, 7));
  const auto plan = one_transfer_plan(0, 2, 2048);
  EXPECT_THROW(cluster.execute(plan), std::runtime_error);
}

TEST(ClusterExecute, LoopbackTransferReportsZeroBytes) {
  // src == dst never touches a NIC or rack link: zero reported traffic, in
  // agreement with the counting back-end.
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.store_chunk(1, 0, 0, rs::Chunk(4096, 3));
  const auto plan = one_transfer_plan(1, 1, 4096);
  const auto report = cluster.execute(plan);
  EXPECT_EQ(report.cross_rack_bytes, 0u);
  EXPECT_EQ(report.intra_rack_bytes, 0u);
  for (const auto bytes : report.per_rack_cross_bytes) EXPECT_EQ(bytes, 0u);
  EXPECT_EQ(plan.cross_rack_bytes(), 0u);
  EXPECT_EQ(plan.intra_rack_bytes(), 0u);
}

TEST(ClusterExecute, VirtualClockSingleTransferMatchesAnalyticTime) {
  // Topology {2,2} with fast_config: rack link rate = 2 * 200e6 / 4 =
  // 100 MB/s is the bottleneck hop, so a 64 KiB cross-rack transfer takes
  // exactly 65536 / 100e6 virtual seconds.
  Cluster cluster(Topology({2, 2}), virtual_config());
  cluster.store_chunk(0, 0, 0, rs::Chunk(64 * 1024, 9));
  const auto report = cluster.execute(one_transfer_plan(0, 2, 64 * 1024));
  EXPECT_NEAR(report.wall_s, 65536.0 / 100e6, 1e-12);
  EXPECT_EQ(report.cross_rack_bytes, 65536u);
}

TEST(ClusterExecute, VirtualClockRecoversBitExactlyAndDeterministically) {
  auto run = [] {
    RecoveryFixture f(0, 101, 12, 64 * 1024, virtual_config());
    const auto balanced =
        recovery::balance_greedy(f.placement, f.censuses, {50});
    const auto plan = recovery::build_car_plan(
        f.placement, f.code, balanced.solutions, 64 * 1024,
        f.scenario.failed_node);
    const auto report = f.cluster.execute(plan);
    f.verify_recovered();
    EXPECT_EQ(report.cross_rack_bytes, plan.cross_rack_bytes());
    EXPECT_EQ(report.intra_rack_bytes, plan.intra_rack_bytes());
    return report;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.wall_s, 0.0);
  EXPECT_GT(a.compute_s, 0.0);
  EXPECT_GT(a.transmission_s(), 0.0);
  // Bit-identical across runs — exact double equality is intentional.
  EXPECT_EQ(a.wall_s, b.wall_s);
  EXPECT_EQ(a.compute_s, b.compute_s);
  EXPECT_EQ(a.replacement_compute_s, b.replacement_compute_s);
  EXPECT_EQ(a.cross_rack_bytes, b.cross_rack_bytes);
  EXPECT_EQ(a.intra_rack_bytes, b.intra_rack_bytes);
  EXPECT_EQ(a.per_rack_cross_bytes, b.per_rack_cross_bytes);
}

TEST(ClusterExecute, VirtualClockThousandStripeSweepIsFast) {
  // Under the seed implementation this plan would spawn one thread per step
  // and sleep through emulated transfer times; with the worker pool and the
  // virtual clock it completes in host milliseconds.
  RecoveryFixture f(1, 707, 1000, 1024, virtual_config());
  const auto balanced = recovery::balance_greedy(f.placement, f.censuses,
                                                 {50});
  const auto plan = recovery::build_car_plan(
      f.placement, f.code, balanced.solutions, 1024, f.scenario.failed_node);
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = f.cluster.execute(plan);
  const std::chrono::duration<double> host =
      std::chrono::steady_clock::now() - t0;
  EXPECT_LT(host.count(), 5.0);  // generous bound for loaded CI machines
  EXPECT_GT(report.wall_s, 0.0);
  EXPECT_EQ(report.cross_rack_bytes, plan.cross_rack_bytes());
  f.verify_recovered();
}

TEST(ClusterExecute, WindowedVirtualPlanNeverBeatsUnwindowed) {
  // Bounding in-flight stripes can only lengthen (or keep) the virtual
  // makespan, and traffic must be unchanged.
  RecoveryFixture f(0, 515, 16, 32 * 1024, virtual_config());
  const auto balanced = recovery::balance_greedy(f.placement, f.censuses,
                                                 {50});
  const auto plan = recovery::build_car_plan(
      f.placement, f.code, balanced.solutions, 32 * 1024,
      f.scenario.failed_node);
  RecoveryFixture g(0, 515, 16, 32 * 1024, virtual_config());
  const auto serial = recovery::schedule_windowed(plan, 1);
  const auto full = f.cluster.execute(plan);
  const auto windowed = g.cluster.execute(serial);
  EXPECT_GE(windowed.wall_s, full.wall_s * (1.0 - 1e-9));
  EXPECT_EQ(windowed.cross_rack_bytes, full.cross_rack_bytes);
}

TEST(ClusterExecute, EmptyPlanIsANoOp) {
  Cluster cluster(Topology({2, 2}), fast_config());
  recovery::RecoveryPlan plan;
  plan.chunk_size = 1;
  const auto report = cluster.execute(plan);
  EXPECT_EQ(report.wall_s, 0.0);
  EXPECT_EQ(report.cross_rack_bytes, 0u);
}

TEST(ClusterExecute, InvalidConfigRejected) {
  EmulConfig bad = fast_config();
  bad.page_bytes = 0;
  EXPECT_THROW(Cluster(Topology({2}), bad), std::invalid_argument);
  EmulConfig bad_gf = fast_config();
  bad_gf.virtual_gf_bps = 0.0;
  EXPECT_THROW(Cluster(Topology({2}), bad_gf), std::invalid_argument);
}

TEST(SerialLink, RateWindowDegradesThroughput) {
  SerialLink link(1e6);  // 1 MB/s
  link.add_rate_window(0.0, 10.0, 0.5);
  // 100 KB at half rate: 0.2 s instead of 0.1 s.
  EXPECT_DOUBLE_EQ(link.preview(0.0, 100'000), 0.2);
  EXPECT_DOUBLE_EQ(link.reserve(0.0, 100'000), 0.2);
}

TEST(SerialLink, BlackoutStallsUntilWindowCloses) {
  SerialLink link(1e6);
  link.add_rate_window(0.0, 1.0, 0.0);
  // Nothing moves during the blackout; the transfer drains after it.
  EXPECT_DOUBLE_EQ(link.reserve(0.0, 100'000), 1.1);
  // Overlapping windows multiply: 0.5 * 0.5 = quarter rate.
  SerialLink slow(1e6);
  slow.add_rate_window(0.0, 10.0, 0.5);
  slow.add_rate_window(0.0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(slow.reserve(0.0, 100'000), 0.4);
}

TEST(SerialLink, TransferStraddlingWindowIntegratesPiecewise) {
  SerialLink link(1e6);
  link.add_rate_window(0.05, 0.15, 0.0);
  // 100 KB: 50 KB drain in [0, 0.05), blackout until 0.15, rest by 0.2.
  EXPECT_DOUBLE_EQ(link.reserve(0.0, 100'000), 0.2);
}

TEST(SerialLink, RejectsMalformedRateWindows) {
  SerialLink link(1e6);
  EXPECT_THROW(link.add_rate_window(0.5, 0.5, 0.5), util::CheckError);
  EXPECT_THROW(link.add_rate_window(-1.0, 1.0, 0.5), util::CheckError);
  EXPECT_THROW(link.add_rate_window(0.0, 1.0, -0.1), util::CheckError);
}

TEST(LinkPath, PreviewMatchesReserveExactly) {
  Cluster cluster(Topology({3, 3}), virtual_config());
  LinkPath path = cluster.path(0, 4);  // cross-rack: 4 hops
  ASSERT_EQ(path.hops().size(), 4u);
  const double projected = path.preview(0.0, 300'000, 16 * 1024);
  EXPECT_DOUBLE_EQ(path.reserve(0.0, 300'000, 16 * 1024), projected);
  // Loopback paths complete instantly.
  LinkPath self = cluster.path(2, 2);
  EXPECT_TRUE(self.loopback());
  EXPECT_DOUBLE_EQ(self.reserve(5.0, 1'000'000, 1024), 5.0);
}

TEST(Cluster, DropNodeIsIdempotentAndFailsFurtherUse) {
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.store_chunk(1, 0, 0, rs::Chunk{1, 2, 3});
  EXPECT_FALSE(cluster.is_dropped(1));

  cluster.drop_node(1);
  EXPECT_TRUE(cluster.is_dropped(1));
  EXPECT_EQ(cluster.find_chunk(1, 0, 0), nullptr);  // buffers wiped
  EXPECT_THROW(cluster.store_chunk(1, 0, 0, rs::Chunk{9}), util::StateError);

  cluster.drop_node(1);  // idempotent: second drop is a no-op
  EXPECT_TRUE(cluster.is_dropped(1));
  EXPECT_THROW(cluster.drop_node(99), std::out_of_range);
}

TEST(Cluster, DropNodeRefusesTheGuardedReplacement) {
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.add_replacement_guard(2);
  EXPECT_THROW(cluster.drop_node(2), util::CheckError);
  EXPECT_FALSE(cluster.is_dropped(2));
  cluster.drop_node(3);  // other nodes still droppable

  cluster.remove_replacement_guard(2);
  cluster.drop_node(2);  // guard released: now allowed
  EXPECT_TRUE(cluster.is_dropped(2));
}

TEST(Cluster, ReplacementGuardsCoverEveryGeneration) {
  Cluster cluster(Topology({3, 3}), fast_config());
  // Generation 1 recovers onto node 0; generation 2 (a second failure's
  // re-plan) onto node 4.  BOTH must stay protected: the resumed plan
  // still reads generation 1's published outputs.
  const auto gen1 = cluster.add_replacement_guard(0);
  const auto gen2 = cluster.add_replacement_guard(4);
  EXPECT_LT(gen1, gen2);
  EXPECT_EQ(cluster.guarded_replacements(),
            (std::vector<cluster::NodeId>{0, 4}));
  EXPECT_THROW(cluster.drop_node(0), util::CheckError);  // first generation
  EXPECT_THROW(cluster.drop_node(4), util::CheckError);
  try {
    cluster.drop_node(0);
    FAIL() << "drop_node(0) should have thrown";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("generation " +
                                         std::to_string(gen1)),
              std::string::npos)
        << e.what();
  }

  // Guards are counted: a nested acquisition needs two releases.
  cluster.add_replacement_guard(0);
  cluster.remove_replacement_guard(0);
  EXPECT_THROW(cluster.drop_node(0), util::CheckError);
  cluster.remove_replacement_guard(0);
  cluster.drop_node(0);
  EXPECT_TRUE(cluster.is_dropped(0));
  EXPECT_THROW(cluster.add_replacement_guard(0), util::CheckError);
  EXPECT_THROW(cluster.remove_replacement_guard(1), util::CheckError);
  cluster.remove_replacement_guard(4);
}

TEST(ClusterExecute, PlanTouchingDroppedNodeRaises) {
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.store_chunk(0, 0, 0, rs::Chunk(1024, 7));
  cluster.drop_node(3);
  auto plan = one_transfer_plan(0, 3, 1024);
  EXPECT_THROW(cluster.execute(plan), util::StateError);
  // The replacement itself being dropped is also rejected (guard installed
  // by execute() for the duration of the run).
  auto self_plan = one_transfer_plan(0, 1, 1024);
  self_plan.replacement = 1;
  cluster.add_replacement_guard(1);
  EXPECT_THROW(cluster.drop_node(1), util::CheckError);
  cluster.remove_replacement_guard(1);
}

TEST(Cluster, ClearStepOutputsKeepsChunks) {
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.store_chunk(0, 3, 1, rs::Chunk{1, 2});
  cluster.put_buffer(0, recovery::BufferRef::step(5), rs::Chunk{9, 9});
  ASSERT_NE(cluster.find_step_output(0, 5), nullptr);
  cluster.clear_step_outputs();
  EXPECT_EQ(cluster.find_step_output(0, 5), nullptr);
  ASSERT_NE(cluster.find_chunk(0, 3, 1), nullptr);
}

}  // namespace
}  // namespace car::emul
