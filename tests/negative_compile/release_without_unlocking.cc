// CAR_RELEASE violation: a function declaring that it releases a capability
// returns with the capability still held.  -Wthread-safety must reject this
// translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Gate {
 public:
  void enter() CAR_ACQUIRE(mu_) { mu_.lock(); }
  // BAD: annotated as releasing mu_, but the body never unlocks it.
  void leave() CAR_RELEASE(mu_) {}

 private:
  car::util::Mutex mu_;
};

[[maybe_unused]] void use() {
  Gate g;
  g.enter();
  g.leave();
}

}  // namespace
