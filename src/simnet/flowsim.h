// Flow-level max-min fair-share network simulator.
//
// The simulator executes a recovery plan's transfer/compute DAG over a
// two-tier topology (node links + oversubscribed rack links, non-blocking
// core).  Active transfers share link capacity max-min fairly (progressive
// filling); compute steps occupy their node's CPU serially.  Time advances
// event-by-event to the next flow or compute completion.
//
// This is the timing back-end for the paper's Fig. 9 (recovery time) — the
// counting back-end is recovery/metrics.h and the real-execution back-end is
// emul/cluster.h.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/topology.h"
#include "recovery/plan.h"
#include "simnet/config.h"

namespace car::simnet {

struct SimResult {
  /// Wall-clock makespan of the whole plan, seconds.
  double makespan_s = 0.0;
  /// Sum of all compute-step durations (CPU busy time), seconds.
  double compute_busy_s = 0.0;
  /// Sum of all compute-step durations executed at the replacement node.
  double replacement_compute_s = 0.0;
  /// Completion time of the last transfer step, seconds.
  double last_transfer_s = 0.0;
  /// Per-step completion times, indexed by plan step id.
  std::vector<double> finish_time_s;

  /// Time not explained by computation on the critical tail — the paper's
  /// "transmission time" proxy: makespan minus replacement compute.
  [[nodiscard]] double transmission_s() const noexcept {
    return makespan_s - replacement_compute_s;
  }
};

/// Simulate a recovery plan on the given topology/fabric.
/// Throws std::invalid_argument on malformed plans (unknown deps, cycles).
SimResult simulate_plan(const cluster::Topology& topology,
                        const recovery::RecoveryPlan& plan,
                        const NetConfig& config);

}  // namespace car::simnet
