// Long-horizon failure-trace study (beyond the paper's single-failure
// snapshots): replay a month of Poisson node failures against each CFS and
// compare the *cumulative* cost of CAR vs RR — total cross-rack bytes,
// total time at reduced redundancy, and how evenly the burden lands on the
// racks over the whole trace.
#include <cstdio>

#include "cluster/configs.h"
#include "util/bytes.h"
#include "util/table.h"
#include "workload/trace.h"

namespace {

constexpr std::size_t kStripes = 100;
constexpr std::size_t kFailures = 30;   // ~a month at one failure per day
constexpr std::uint64_t kChunkSize = 8ull << 20;

}  // namespace

int main() {
  using namespace car;
  std::printf("== Failure-trace study: cumulative recovery cost ==\n");
  std::printf("%zu stripes, %zu Poisson failures (1/day), %s chunks, "
              "flow-level timing\n\n",
              kStripes, kFailures, util::format_bytes(kChunkSize).c_str());

  util::TextTable table({"CFS", "strategy", "chunks rebuilt",
                         "cross-rack total", "exposure (s)", "worst event (s)",
                         "trace lambda"});
  for (const auto& cfg : cluster::paper_configs()) {
    util::Rng rng(0x7EACE000ULL + cfg.k);
    const auto placement = cluster::Placement::random(
        cfg.topology(), cfg.k, cfg.m, kStripes, rng);
    const auto events = workload::generate_failure_trace(
        placement.topology(), {kFailures, 24.0 * 3600.0}, rng);

    const simnet::NetConfig net;
    for (const auto strategy :
         {workload::Strategy::kRr, workload::Strategy::kCar}) {
      util::Rng replay_rng = rng.split();
      const auto report = workload::run_failure_trace(
          placement, events, strategy, kChunkSize, net, replay_rng);
      table.add_row(
          {cfg.name, strategy == workload::Strategy::kCar ? "CAR" : "RR",
           std::to_string(report.chunks_rebuilt),
           util::format_bytes(report.cross_rack_bytes),
           util::fmt_double(report.total_recovery_s, 1),
           util::fmt_double(report.max_recovery_s, 1),
           util::fmt_double(report.aggregate_lambda, 3)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Exposure = summed recovery makespans, i.e. time the cluster "
              "ran with reduced\nredundancy.  CAR's savings compound over "
              "the trace: less core traffic per\nfailure and shorter "
              "windows of vulnerability.\n");
  return 0;
}
