// Resilient recovery-plan execution under injected faults.
//
// ResilientRuntime executes a RecoveryPlan against emul::Cluster the way a
// production repair pipeline would run it on a misbehaving network: every
// transfer has a timeout, failed attempts (drop, corruption, timeout) are
// retried with seeded exponential backoff + jitter (util::BackoffSchedule),
// and when a FaultPlan kills a *second* node mid-plan the runtime escalates
// — cancels the outstanding steps, drops the node, re-plans the remaining
// work through recovery/multi, re-validates the new plan with
// recovery/validate, and resumes on the same virtual timeline.
//
// Execution is a sequential event loop in virtual time ((time, step,
// attempt) min-heap), so with a virtual-clock cluster a run is a pure
// function of (plan, FaultPlan, seed): the EventLog two identical runs
// produce is byte-identical.  Real bytes still move and the real GF kernels
// still run — recovered chunks are bit-exact, not simulated.
//
// Accounting is at-most-once: ExecutionReport traffic counts a transfer's
// payload exactly once, no matter how many attempts it took (failed
// attempts accumulate separately in RunStats::wasted_wire_bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "emul/cluster.h"
#include "inject/event_log.h"
#include "inject/fault.h"
#include "recovery/plan.h"
#include "recovery/validate.h"
#include "rs/code.h"
#include "util/stats.h"

namespace car::inject {

/// Per-transfer failure handling knobs.
struct RetryPolicy {
  /// A transfer attempt that has not delivered after this many virtual
  /// seconds is abandoned and retried.
  double transfer_timeout_s = 0.5;
  /// Total tries per transfer (first attempt included).  Exhaustion is a
  /// permanent failure: the run throws util::StateError.
  std::size_t max_attempts = 5;
  /// Retry delay for 1-based attempt a: min(base * factor^(a-1), cap),
  /// jittered by the run seed.
  util::BackoffSchedule backoff{0.01, 2.0, 0.25, 0.2};
};

/// Which planner the crash escalation re-plans with (mirrors the strategy
/// of the original plan).
enum class ReplanStrategy : std::uint8_t { kCar, kRr };

/// Everything the runtime needs to re-plan after a mid-recovery crash.
/// placement/code may be null when the FaultPlan contains no node crashes.
struct ReplanContext {
  const cluster::Placement* placement = nullptr;
  const rs::Code* code = nullptr;
  /// Nodes whose data was already lost before this run (the original
  /// failure); the crashed node joins them in the multi-failure scenario.
  std::vector<cluster::NodeId> failed_nodes;
  ReplanStrategy strategy = ReplanStrategy::kCar;
};

/// What payload actually moves during a run.  The default carries real
/// bytes for every stripe.  A metadata-only run keeps the *identical*
/// event loop, virtual timeline, fault matching, retry schedule, and byte
/// accounting — every event lands at the same time with the same declared
/// bytes — but skips payload staging, GF compute, and buffer writes for
/// stripes not listed in sampled_stripes: their recoveries are measured,
/// not materialised.  Sampled stripes carry real bytes end to end, so a
/// seeded sample of a datacenter-scale run is still verified bit-exactly.
///
/// Caveat: a corrupt-fault checksum detail requires payload bytes, so
/// kTransferCorrupt events on *unsampled* stripes log a metadata-only
/// placeholder instead of real checksums.  When comparing a metadata run's
/// log byte-for-byte against a real-byte run, aim corrupt faults at
/// sampled stripes.
struct DataPolicy {
  bool metadata_only = false;
  /// Stripes that stay real-byte (order/duplicates irrelevant); ignored
  /// when metadata_only is false.
  std::vector<cluster::StripeId> sampled_stripes;
};

struct RunStats {
  std::size_t attempts = 0;      // transfer attempts issued
  std::size_t retries = 0;       // attempts beyond the first
  std::size_t timeouts = 0;      // attempts abandoned at the deadline
  std::size_t drops = 0;         // attempts lost in flight (fault)
  std::size_t corruptions = 0;   // attempts rejected by checksum (fault)
  std::size_t replans = 0;       // crash escalations
  std::size_t cancelled_steps = 0;  // steps abandoned by escalations
  /// Bytes that crossed links in attempts that ultimately failed — wire
  /// waste, deliberately kept out of ExecutionReport's traffic totals.
  std::uint64_t wasted_wire_bytes = 0;
};

struct RunResult {
  emul::ExecutionReport report;  // at-most-once traffic, modelled compute
  EventLog log;
  RunStats stats;
  bool replanned = false;
  /// The plan that actually finished: the re-plan after the last crash
  /// escalation, or a copy of the input plan when no crash fired.
  recovery::RecoveryPlan final_plan;
  /// Validation report of the last re-plan (empty when !replanned).
  recovery::ValidationReport replan_validation;
};

class ResilientRuntime {
 public:
  /// The cluster must use ClockMode::kVirtual (util::StateError otherwise —
  /// wall clocks cannot reproduce an EventLog byte-for-byte).  `faults` is
  /// validated against the cluster topology on execute().
  ResilientRuntime(emul::Cluster& cluster, FaultPlan faults,
                   RetryPolicy policy, std::uint64_t seed);

  /// Run `plan` to completion under the fault schedule.  Throws
  /// util::StateError when a transfer exhausts its retry budget, a re-plan
  /// fails validation, or a crash targets the replacement node; propagates
  /// util::CheckError from malformed plans/faults.  On success every plan
  /// output is published on the replacement as a regular chunk replica.
  /// Runs chunk-granular (a degenerate one-slice lowering of the sliced
  /// engine below — identical events, bytes, and timeline).
  RunResult execute(const recovery::RecoveryPlan& plan,
                    const ReplanContext& context);

  /// Slice-pipelined variant: lower `plan` onto a `slice_bytes` grid
  /// (recovery/slice.h) and run it with timeouts, retries, fault matching,
  /// and crash escalation at slice granularity.  Cross-rack shipping of
  /// slice s overlaps partial decoding of slice s+1 on the virtual
  /// timeline, so the makespan approaches max(transfer, compute).
  /// At-most-once accounting is preserved per slice (slices of one
  /// transfer sum to exactly chunk_size), recovered bytes are bit-identical
  /// to the chunk-granular run, and same-seed runs stay byte-identical in
  /// the EventLog.  Crash escalations re-plan at chunk granularity and
  /// re-lower the new plan onto the same grid.
  RunResult execute_sliced(const recovery::RecoveryPlan& plan,
                           std::uint64_t slice_bytes,
                           const ReplanContext& context);

  /// As above, under an explicit payload policy (see DataPolicy).  The
  /// three-argument overload is this one with the default (all-real)
  /// policy.
  RunResult execute_sliced(const recovery::RecoveryPlan& plan,
                           std::uint64_t slice_bytes,
                           const ReplanContext& context,
                           const DataPolicy& data);

 private:
  emul::Cluster& cluster_;
  FaultPlan faults_;
  RetryPolicy policy_;
  std::uint64_t seed_;
};

}  // namespace car::inject
