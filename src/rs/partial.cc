#include "rs/partial.h"

#include <vector>

#include "gf/region.h"
#include "util/check.h"

namespace car::rs {

Chunk partial_decode(std::span<const std::uint8_t> repair_vector,
                     const PartialGroup& group,
                     std::span<const ChunkView> survivor_chunks) {
  CAR_CHECK(!survivor_chunks.empty(), "partial_decode: no survivor chunks");
  const std::size_t size = survivor_chunks.front().size();
  std::vector<std::uint8_t> coeffs;
  std::vector<ChunkView> views;
  coeffs.reserve(group.positions.size());
  views.reserve(group.positions.size());
  for (std::size_t pos : group.positions) {
    CAR_CHECK(pos < survivor_chunks.size() && pos < repair_vector.size(),
              "partial_decode: position out of range");
    CAR_CHECK_EQ(survivor_chunks[pos].size(), size,
                 "partial_decode: chunk size mismatch");
    coeffs.push_back(repair_vector[pos]);
    views.push_back(survivor_chunks[pos]);
  }
  Chunk out(size, 0);
  gf::linear_combine_acc(coeffs, views, out);
  return out;
}

Chunk combine_partials(std::span<const ChunkView> partials) {
  CAR_CHECK(!partials.empty(), "combine_partials: empty input");
  for (const auto& p : partials) {
    CAR_CHECK_EQ(p.size(), partials.front().size(),
                 "combine_partials: size mismatch");
  }
  // All-ones combine: XORs every partial into the output one tile at a time.
  const std::vector<std::uint8_t> ones(partials.size(), 1);
  Chunk out(partials.front().size(), 0);
  gf::linear_combine_acc(ones, partials, out);
  return out;
}

Chunk reconstruct_grouped(const Code& code, std::size_t target,
                          std::span<const std::size_t> survivor_ids,
                          std::span<const ChunkView> survivor_chunks,
                          std::span<const PartialGroup> groups) {
  CAR_CHECK_EQ(survivor_chunks.size(), survivor_ids.size(),
               "reconstruct_grouped: ids/chunks mismatch");
  // Precondition for generator-matrix invertibility: the repair vector is
  // y = e_target · G_surv⁻¹ · …, which exists only when exactly k distinct
  // survivor rows are selected (any k rows of an MDS generator matrix are
  // invertible; fewer can never be).
  CAR_CHECK_EQ(survivor_ids.size(), code.k(),
               "reconstruct_grouped: need exactly k survivors");
  // Check the groups partition the survivor positions exactly — this is the
  // paper's partial-decoding identity: the per-group sums reconstruct H_i
  // only when every survivor term appears in exactly one group.
  std::vector<bool> covered(survivor_ids.size(), false);
  for (const auto& g : groups) {
    for (std::size_t pos : g.positions) {
      CAR_CHECK(pos < covered.size() && !covered[pos],
                "reconstruct_grouped: groups must partition survivor "
                "positions");
      covered[pos] = true;
    }
  }
  for (bool c : covered) {
    CAR_CHECK(c, "reconstruct_grouped: some survivor position is unassigned");
  }

  const auto y = code.repair_vector(target, survivor_ids);
  CAR_CHECK_EQ(y.size(), survivor_ids.size(),
               "reconstruct_grouped: repair vector arity");
  std::vector<Chunk> partials;
  partials.reserve(groups.size());
  for (const auto& g : groups) {
    partials.push_back(partial_decode(y, g, survivor_chunks));
  }
  std::vector<ChunkView> views(partials.begin(), partials.end());
  return combine_partials(views);
}

}  // namespace car::rs
