#include "simnet/flowsim.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"
#include "recovery/balancer.h"

namespace car::simnet {
namespace {

using cluster::Topology;
using recovery::BufferRef;
using recovery::PlanStep;
using recovery::RecoveryPlan;
using recovery::StepKind;

RecoveryPlan empty_plan(cluster::NodeId replacement, std::uint64_t chunk) {
  RecoveryPlan plan;
  plan.replacement = replacement;
  plan.chunk_size = chunk;
  return plan;
}

PlanStep transfer(std::size_t id, cluster::NodeId src, cluster::NodeId dst,
                  std::uint64_t bytes, std::vector<std::size_t> deps = {}) {
  PlanStep s;
  s.id = id;
  s.kind = StepKind::kTransfer;
  s.src = src;
  s.dst = dst;
  s.bytes = bytes;
  s.deps = std::move(deps);
  return s;
}

PlanStep compute(std::size_t id, cluster::NodeId node, std::uint64_t bytes,
                 std::vector<std::size_t> deps = {},
                 std::uint8_t coeff = 2) {
  PlanStep s;
  s.id = id;
  s.kind = StepKind::kCompute;
  s.node = node;
  s.bytes = bytes;
  s.inputs = {{BufferRef::chunk(0, 0), coeff}};
  s.deps = std::move(deps);
  return s;
}

NetConfig fast_net() {
  NetConfig cfg;
  cfg.node_bps = 100.0;  // 100 bytes/sec -> easy mental math
  cfg.oversubscription = 2.0;
  cfg.gf_compute_bps = 1000.0;
  cfg.xor_compute_bps = 2000.0;
  return cfg;
}

TEST(FlowSim, SingleIntraRackTransferTakesBytesOverNodeRate) {
  const Topology topo({2, 2});
  auto plan = empty_plan(0, 100);
  plan.steps.push_back(transfer(0, 1, 0, 100));
  const auto result = simulate_plan(topo, plan, fast_net());
  // Intra-rack route: node1.up (100 B/s) and node0.down (100 B/s) -> 1 s.
  EXPECT_NEAR(result.makespan_s, 1.0, 1e-9);
  EXPECT_NEAR(result.finish_time_s[0], 1.0, 1e-9);
  EXPECT_EQ(result.compute_busy_s, 0.0);
}

TEST(FlowSim, CrossRackTransferIsBottleneckedByTheRackLink) {
  const Topology topo({2, 2});
  auto plan = empty_plan(0, 100);
  plan.steps.push_back(transfer(0, 2, 0, 100));
  const auto result = simulate_plan(topo, plan, fast_net());
  // Rack link = 2 nodes * 100 / oversub 2 = 100 B/s: same as node rate,
  // still 1 s.
  EXPECT_NEAR(result.makespan_s, 1.0, 1e-9);

  NetConfig slow_core = fast_net();
  slow_core.oversubscription = 4.0;  // rack link = 50 B/s
  const auto slow = simulate_plan(topo, plan, slow_core);
  EXPECT_NEAR(slow.makespan_s, 2.0, 1e-9);
}

TEST(FlowSim, TwoFlowsShareABottleneckFairly) {
  const Topology topo({3, 3});
  auto plan = empty_plan(0, 100);
  // Both remote nodes send to node 0: its down-link (100 B/s) is shared.
  plan.steps.push_back(transfer(0, 1, 0, 100));
  plan.steps.push_back(transfer(1, 2, 0, 100));
  const auto result = simulate_plan(topo, plan, fast_net());
  EXPECT_NEAR(result.makespan_s, 2.0, 1e-9);
}

TEST(FlowSim, MaxMinGivesUnevenSharesWhenRoutesDiffer) {
  const Topology topo({2, 2});
  NetConfig cfg = fast_net();
  cfg.oversubscription = 4.0;  // rack links 50 B/s
  auto plan = empty_plan(0, 100);
  plan.steps.push_back(transfer(0, 2, 0, 100));  // cross-rack, capped at 50
  plan.steps.push_back(transfer(1, 1, 0, 100));  // intra-rack
  const auto result = simulate_plan(topo, plan, cfg);
  // Node0 down-link: fair share 50/50 at first; cross-rack flow is capped at
  // 50 by the rack link anyway, intra-rack takes the remaining 50.
  // Both finish at t=2.
  EXPECT_NEAR(result.finish_time_s[0], 2.0, 1e-9);
  EXPECT_NEAR(result.finish_time_s[1], 2.0, 1e-9);
}

TEST(FlowSim, DependenciesSerialiseAndComputeTimesAdd) {
  const Topology topo({2, 2});
  auto plan = empty_plan(0, 100);
  plan.steps.push_back(transfer(0, 1, 0, 100));          // 1 s
  plan.steps.push_back(compute(1, 0, 1000, {0}));        // 1 s GF at 1000 B/s
  plan.steps.push_back(transfer(2, 0, 2, 100, {1}));     // cross, 1 s
  const auto result = simulate_plan(topo, plan, fast_net());
  EXPECT_NEAR(result.makespan_s, 3.0, 1e-9);
  EXPECT_NEAR(result.compute_busy_s, 1.0, 1e-9);
  EXPECT_NEAR(result.replacement_compute_s, 1.0, 1e-9);
  EXPECT_NEAR(result.last_transfer_s, 3.0, 1e-9);
  EXPECT_NEAR(result.transmission_s(), 2.0, 1e-9);
}

TEST(FlowSim, XorComputeUsesTheFasterRate) {
  const Topology topo({1});
  auto plan = empty_plan(0, 1);
  plan.steps.push_back(compute(0, 0, 2000, {}, /*coeff=*/1));  // pure XOR
  const auto result = simulate_plan(topo, plan, fast_net());
  EXPECT_NEAR(result.makespan_s, 1.0, 1e-9);  // 2000 / 2000 B/s
}

TEST(FlowSim, RackComputeMultiplierSpeedsUpARack) {
  const Topology topo({1, 1});
  NetConfig cfg = fast_net();
  cfg.rack_compute_multiplier = {1.0, 4.0};
  auto plan = empty_plan(0, 1);
  plan.steps.push_back(compute(0, 1, 1000));
  const auto result = simulate_plan(topo, plan, cfg);
  EXPECT_NEAR(result.makespan_s, 0.25, 1e-9);
}

TEST(FlowSim, CpuIsSerialPerNode) {
  const Topology topo({1});
  auto plan = empty_plan(0, 1);
  plan.steps.push_back(compute(0, 0, 1000));
  plan.steps.push_back(compute(1, 0, 1000));
  const auto result = simulate_plan(topo, plan, fast_net());
  EXPECT_NEAR(result.makespan_s, 2.0, 1e-9);
}

TEST(FlowSim, PerHopLatencyDelaysTransfers) {
  const Topology topo({2, 2});
  NetConfig cfg = fast_net();
  cfg.per_hop_latency_s = 0.25;
  auto plan = empty_plan(0, 100);
  plan.steps.push_back(transfer(0, 1, 0, 100));  // intra-rack: 2 hops
  const auto intra = simulate_plan(topo, plan, cfg);
  EXPECT_NEAR(intra.makespan_s, 1.0 + 2 * 0.25, 1e-9);

  auto cross_plan = empty_plan(0, 100);
  cross_plan.steps.push_back(transfer(0, 2, 0, 100));  // cross-rack: 4 hops
  const auto cross = simulate_plan(topo, cross_plan, cfg);
  EXPECT_NEAR(cross.makespan_s, 1.0 + 4 * 0.25, 1e-9);
}

TEST(FlowSim, LatencyChainsThroughDependencies) {
  const Topology topo({2, 2});
  NetConfig cfg = fast_net();
  cfg.per_hop_latency_s = 0.5;
  auto plan = empty_plan(0, 100);
  plan.steps.push_back(transfer(0, 1, 0, 100));        // 1 s + 1 s latency
  plan.steps.push_back(transfer(1, 0, 1, 100, {0}));   // same again
  const auto result = simulate_plan(topo, plan, cfg);
  EXPECT_NEAR(result.makespan_s, 2.0 * (1.0 + 1.0), 1e-9);
}

TEST(FlowSim, BackgroundLoadScalesCapacityDown) {
  const Topology topo({2, 2});
  NetConfig cfg = fast_net();
  cfg.background_load = 0.5;  // half the fabric is busy
  auto plan = empty_plan(0, 100);
  plan.steps.push_back(transfer(0, 1, 0, 100));
  const auto result = simulate_plan(topo, plan, cfg);
  EXPECT_NEAR(result.makespan_s, 2.0, 1e-9);  // 100 B at 50 B/s

  NetConfig bad = fast_net();
  bad.background_load = 1.0;
  EXPECT_THROW(simulate_plan(topo, plan, bad), std::invalid_argument);
  bad.background_load = -0.1;
  EXPECT_THROW(simulate_plan(topo, plan, bad), std::invalid_argument);
}

TEST(FlowSim, NegativeLatencyRejected) {
  const Topology topo({2});
  auto plan = empty_plan(0, 1);
  NetConfig cfg = fast_net();
  cfg.per_hop_latency_s = -0.1;
  EXPECT_THROW(simulate_plan(topo, plan, cfg), std::invalid_argument);
}

TEST(FlowSim, CycleDetection) {
  const Topology topo({2});
  auto plan = empty_plan(0, 1);
  plan.steps.push_back(transfer(0, 1, 0, 10, {1}));
  plan.steps.push_back(transfer(1, 1, 0, 10, {0}));
  EXPECT_THROW(simulate_plan(topo, plan, fast_net()), std::invalid_argument);
}

TEST(FlowSim, InvalidConfigRejected) {
  const Topology topo({2});
  auto plan = empty_plan(0, 1);
  NetConfig bad;
  bad.node_bps = -1;
  EXPECT_THROW(simulate_plan(topo, plan, bad), std::invalid_argument);
  NetConfig wrong_mult;
  wrong_mult.rack_compute_multiplier = {1.0, 2.0};  // topo has 1 rack
  EXPECT_THROW(simulate_plan(topo, plan, wrong_mult), std::invalid_argument);
}

class EndToEndSim
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EndToEndSim, CarRecoversFasterThanRrOnPaperConfigs) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  util::Rng rng(std::get<1>(GetParam()));
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 50, rng);
  const auto scenario = cluster::inject_random_failure(placement, rng);
  const auto censuses = recovery::build_censuses(placement, scenario);
  const rs::Code code(cfg.k, cfg.m);
  constexpr std::uint64_t kChunk = 4ull << 20;

  const auto car = recovery::balance_greedy(placement, censuses, {50});
  const auto car_plan = recovery::build_car_plan(
      placement, code, car.solutions, kChunk, scenario.failed_node);

  const auto rr = recovery::plan_rr(placement, censuses, rng);
  const auto rr_plan = recovery::build_rr_plan(placement, code, rr, kChunk,
                                               scenario.failed_node);

  NetConfig net;  // defaults: 1 GbE, 5x oversubscription
  const auto car_time = simulate_plan(placement.topology(), car_plan, net);
  const auto rr_time = simulate_plan(placement.topology(), rr_plan, net);
  EXPECT_LT(car_time.makespan_s, rr_time.makespan_s)
      << cfg.name << " seed " << std::get<1>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, EndToEndSim,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(5u, 55u)));

}  // namespace
}  // namespace car::simnet
