#include "recovery/balancer.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"

namespace car::recovery {
namespace {

using cluster::Placement;
using cluster::Topology;

struct Scenario {
  Placement placement;
  cluster::FailureScenario failure;
  std::vector<StripeCensus> censuses;
};

Scenario make_scenario(const cluster::CfsConfig& cfg, std::size_t stripes,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  auto placement =
      Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  auto failure = cluster::inject_random_failure(placement, rng);
  auto censuses = build_censuses(placement, failure);
  return {std::move(placement), std::move(failure), std::move(censuses)};
}

class BalancerSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BalancerSweep, LambdaTraceIsMonotonicallyNonIncreasing) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  auto s = make_scenario(cfg, 100, std::get<1>(GetParam()));
  const auto result = balance_greedy(s.placement, s.censuses, {50});
  ASSERT_FALSE(result.lambda_trace.empty());
  for (std::size_t i = 1; i < result.lambda_trace.size(); ++i) {
    EXPECT_LE(result.lambda_trace[i], result.lambda_trace[i - 1] + 1e-12)
        << "iteration " << i;
  }
  EXPECT_GE(result.final_lambda(), 1.0 - 1e-12);
}

TEST_P(BalancerSweep, TotalTrafficIsInvariantUnderBalancing) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  auto s = make_scenario(cfg, 100, std::get<1>(GetParam()));

  const auto initial = plan_car_initial(s.placement, s.censuses);
  const auto balanced = balance_greedy(s.placement, s.censuses, {50});

  const auto racks = s.placement.topology().num_racks();
  const auto t0 = car_traffic(initial, racks, s.failure.failed_rack);
  const auto t1 =
      car_traffic(balanced.solutions, racks, s.failure.failed_rack);
  EXPECT_EQ(t0.total_chunks(), t1.total_chunks())
      << "balancing must never add cross-rack traffic";
  EXPECT_LE(t1.lambda(), t0.lambda() + 1e-12);
}

TEST_P(BalancerSweep, EverySolutionRemainsValidMinimal) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  auto s = make_scenario(cfg, 80, std::get<1>(GetParam()) + 17);
  const auto result = balance_greedy(s.placement, s.censuses, {50});
  ASSERT_EQ(result.solutions.size(), s.censuses.size());
  for (std::size_t j = 0; j < s.censuses.size(); ++j) {
    EXPECT_TRUE(is_valid_minimal(s.censuses[j], result.solutions[j].rack_set));
  }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, BalancerSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3u, 91u, 2024u)));

TEST(Balancer, PaperFigure6StyleSubstitutionReducesLambda) {
  // Build a layout where the default choice overloads one rack but an
  // alternative valid solution exists: 3 racks, k=2, m=2, stripes placed so
  // rack 1 is everyone's first choice yet rack 2 is also valid.
  Placement p(Topology({2, 2, 2}), 2, 2);
  // Each stripe: failed rack 0 holds 1 chunk (on node 0), rack 1 holds 2,
  // rack 2 holds 1.  After failure: local survivors 0, need k=2.
  // d=1 via rack 1 (2 chunks); rack 2 alone has 1 -> not valid.  To create
  // substitution room, make some stripes with rack2 = 2 chunks.
  p.add_stripe({0, 2, 3, 4});  // censuses: A1=1, A2=2, A3=1
  p.add_stripe({0, 2, 3, 5});  // A1=1, A2=2, A3=1
  p.add_stripe({0, 2, 4, 5});  // A1=1, A2=1, A3=2
  p.add_stripe({0, 3, 4, 5});  // A1=1, A2=1, A3=2
  const auto scenario = cluster::inject_node_failure(p, 0);
  ASSERT_EQ(scenario.lost.size(), 4u);
  const auto censuses = build_censuses(p, scenario);

  // Default picks the largest intact rack for each stripe: A2, A2, A3, A3 ->
  // perfectly balanced already (t = {0, 2, 2}).  Force imbalance by checking
  // the greedy cannot do worse.
  const auto result = balance_greedy(p, censuses, {50});
  EXPECT_LE(result.final_lambda(), result.initial_lambda());
  const auto traffic =
      car_traffic(result.solutions, 3, scenario.failed_rack);
  EXPECT_EQ(traffic.total_chunks(), 4u);
  EXPECT_NEAR(traffic.lambda(), 1.0, 1e-9);
}

TEST(Balancer, ConvergesAndStopsEarlyWhenNoSubstitutionExists) {
  // Single stripe: nothing to rebalance.
  Placement p(Topology({2, 2, 2}), 2, 2);
  p.add_stripe({0, 2, 3, 4});
  const auto scenario = cluster::inject_node_failure(p, 0);
  const auto censuses = build_censuses(p, scenario);
  const auto result = balance_greedy(p, censuses, {50});
  EXPECT_EQ(result.substitutions, 0u);
  EXPECT_EQ(result.iterations_run, 0u);
  EXPECT_EQ(result.lambda_trace.size(), 1u);
}

TEST(Balancer, EmptyCensusListThrows) {
  Placement p(Topology({2, 2, 2}), 2, 2);
  EXPECT_THROW(balance_greedy(p, {}, {10}), std::invalid_argument);
  EXPECT_THROW(balance_exhaustive({}, 1000), std::invalid_argument);
}

TEST(Balancer, GreedyMatchesExhaustiveOnSmallInstances) {
  // Exhaustive search is the ground truth for max_i t_i; greedy should get
  // within one chunk of it on small multi-stripe instances.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const auto cfg = cluster::cfs1();
    auto s = make_scenario(cfg, 8, seed);
    const auto greedy = balance_greedy(s.placement, s.censuses, {200});
    const auto exact = balance_exhaustive(s.censuses, 5'000'000);
    ASSERT_TRUE(exact.has_value()) << "seed " << seed;

    const auto traffic = car_traffic(greedy.solutions,
                                     s.placement.topology().num_racks(),
                                     s.failure.failed_rack);
    std::size_t greedy_max = 0;
    for (cluster::RackId i = 0; i < traffic.per_rack_chunks.size(); ++i) {
      if (i != s.failure.failed_rack) {
        greedy_max = std::max(greedy_max, traffic.per_rack_chunks[i]);
      }
    }
    EXPECT_LE(greedy_max, exact->max_rack_chunks + 1) << "seed " << seed;
    EXPECT_GE(greedy_max, exact->max_rack_chunks) << "exhaustive is optimal";
  }
}

TEST(Balancer, ExhaustiveRespectsNodeBudget) {
  const auto cfg = cluster::cfs3();
  auto s = make_scenario(cfg, 40, 77);
  // A tiny node budget must abort and return nullopt rather than hang.
  EXPECT_EQ(balance_exhaustive(s.censuses, 10), std::nullopt);
}

}  // namespace
}  // namespace car::recovery
