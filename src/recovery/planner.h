// Materialisation of rack-level solutions into chunk-level recovery picks.
//
// A RackSet says *which racks* to contact; the planner decides *which k
// chunks* to actually read: all surviving chunks in the failed rack first
// (intra-rack, cheap), then the chosen intact racks from largest census to
// smallest, trimming the final rack so exactly k chunks are read.
// Minimality of the rack set guarantees every chosen rack contributes at
// least one chunk.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "recovery/census.h"
#include "recovery/solutions.h"

namespace car::recovery {

/// Chunks to read from one rack (chunk indices within the stripe).
struct RackPick {
  cluster::RackId rack = 0;
  std::vector<std::size_t> chunk_indices;
};

/// A fully materialised per-stripe recovery solution: which intact racks are
/// accessed (the cross-rack traffic, one partial chunk each) and exactly
/// which k chunks are read overall (including the failed rack's survivors).
struct PerStripeSolution {
  cluster::StripeId stripe = 0;
  std::size_t lost_chunk = 0;
  RackSet rack_set;               // intact racks accessed
  std::vector<RackPick> picks;    // per contributing rack (failed rack first
                                  // when it contributes); chunk counts sum to k

  /// Cross-rack repair traffic of this stripe in chunks (== #intact racks
  /// accessed, thanks to partial decoding).
  [[nodiscard]] std::size_t cross_rack_chunks() const noexcept {
    return rack_set.racks.size();
  }

  /// All chunk indices read, flattened (size k).
  [[nodiscard]] std::vector<std::size_t> all_chunk_indices() const;
};

/// Turn a valid minimal rack set into chunk-level picks.
/// Throws std::invalid_argument when `set` is not valid/minimal for the
/// census.
PerStripeSolution materialize(const cluster::Placement& placement,
                              const StripeCensus& census, const RackSet& set);

/// Convenience: default (most-chunks-first) CAR solution for each lost chunk
/// of a failure scenario — the initial multi-stripe solution of Algorithm 2.
std::vector<PerStripeSolution> plan_car_initial(
    const cluster::Placement& placement,
    const std::vector<StripeCensus>& censuses);

}  // namespace car::recovery
