// End-to-end integration: the full CAR pipeline (placement -> failure ->
// census -> Theorem 1 -> balancing -> plan -> execution on the emulated
// cluster) against the RR baseline, on all three paper configurations, with
// bit-exact verification of every recovered chunk.
#include <gtest/gtest.h>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "simnet/flowsim.h"

namespace car {
namespace {

struct PipelineResult {
  recovery::TrafficSummary traffic;
  double sim_makespan_s = 0.0;
  std::size_t cross_rack_chunks = 0;
};

class FullPipeline
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  static constexpr std::size_t kStripes = 25;
  static constexpr std::uint64_t kChunkSize = 32 * 1024;

  cluster::CfsConfig cfg_ =
      cluster::paper_configs()[std::get<0>(GetParam())];
  util::Rng rng_{std::get<1>(GetParam())};
};

TEST_P(FullPipeline, CarBeatsRrAndBothRecoverBitExactly) {
  auto placement = cluster::Placement::random(cfg_.topology(), cfg_.k, cfg_.m,
                                              kStripes, rng_);
  const rs::Code code(cfg_.k, cfg_.m);

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = 400e6;
  emul_cfg.oversubscription = 5.0;
  emul_cfg.page_bytes = 16 * 1024;

  // Two identical clusters so CAR and RR start from the same bytes.
  emul::Cluster cluster_car(cfg_.topology(), emul_cfg);
  emul::Cluster cluster_rr(cfg_.topology(), emul_cfg);
  util::Rng data_rng = rng_.split();
  util::Rng data_rng_copy = data_rng;  // same stream -> same stripes
  const auto originals =
      cluster_car.populate(placement, code, kChunkSize, data_rng);
  const auto originals_rr =
      cluster_rr.populate(placement, code, kChunkSize, data_rng_copy);
  ASSERT_EQ(originals.size(), originals_rr.size());

  const auto scenario = cluster::inject_random_failure(placement, rng_);
  cluster_car.erase_node(scenario.failed_node);
  cluster_rr.erase_node(scenario.failed_node);
  const auto censuses = recovery::build_censuses(placement, scenario);

  // --- CAR ---
  const auto balanced = recovery::balance_greedy(placement, censuses, {50});
  const auto car_plan = recovery::build_car_plan(
      placement, code, balanced.solutions, kChunkSize, scenario.failed_node);
  const auto car_report = cluster_car.execute(car_plan);

  // --- RR ---
  const auto rr = recovery::plan_rr(placement, censuses, rng_);
  const auto rr_plan = recovery::build_rr_plan(placement, code, rr, kChunkSize,
                                               scenario.failed_node);
  const auto rr_report = cluster_rr.execute(rr_plan);

  // Bit-exact recovery on both paths.
  for (const auto& lost : scenario.lost) {
    const auto* car_chunk = cluster_car.find_chunk(
        scenario.failed_node, lost.stripe, lost.chunk_index);
    const auto* rr_chunk = cluster_rr.find_chunk(scenario.failed_node,
                                                 lost.stripe, lost.chunk_index);
    ASSERT_NE(car_chunk, nullptr);
    ASSERT_NE(rr_chunk, nullptr);
    EXPECT_EQ(*car_chunk, originals[lost.stripe][lost.chunk_index]);
    EXPECT_EQ(*rr_chunk, originals[lost.stripe][lost.chunk_index]);
  }

  // CAR never ships more cross-rack bytes than RR (Fig. 7's invariant).
  EXPECT_LE(car_report.cross_rack_bytes, rr_report.cross_rack_bytes);

  // The flow simulator agrees directionally with the emulator.
  simnet::NetConfig net;
  const auto car_sim = simnet::simulate_plan(cfg_.topology(), car_plan, net);
  const auto rr_sim = simnet::simulate_plan(cfg_.topology(), rr_plan, net);
  EXPECT_LT(car_sim.makespan_s, rr_sim.makespan_s);
}

TEST_P(FullPipeline, BalancedLambdaIsNeverWorseThanUnbalanced) {
  auto placement = cluster::Placement::random(cfg_.topology(), cfg_.k, cfg_.m,
                                              100, rng_);
  const auto scenario = cluster::inject_random_failure(placement, rng_);
  const auto censuses = recovery::build_censuses(placement, scenario);

  const auto initial = recovery::plan_car_initial(placement, censuses);
  const auto balanced = recovery::balance_greedy(placement, censuses, {50});

  const auto racks = placement.topology().num_racks();
  const auto lambda0 =
      recovery::car_traffic(initial, racks, scenario.failed_rack).lambda();
  const auto lambda1 =
      recovery::car_traffic(balanced.solutions, racks, scenario.failed_rack)
          .lambda();
  EXPECT_LE(lambda1, lambda0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, FullPipeline,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1u, 9u)));

TEST(FullPipelineEdge, EveryNodeFailureInCfs1IsRecoverable) {
  // Exhaustively fail every node (not just a random one) in a small cluster
  // and confirm the whole pipeline runs and the traffic accounting is
  // consistent.
  const auto cfg = cluster::cfs1();
  util::Rng rng(99);
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 30, rng);
  const rs::Code code(cfg.k, cfg.m);

  for (cluster::NodeId node = 0; node < placement.topology().num_nodes();
       ++node) {
    const auto scenario = cluster::inject_node_failure(placement, node);
    if (scenario.lost.empty()) continue;
    const auto censuses = recovery::build_censuses(placement, scenario);
    const auto balanced = recovery::balance_greedy(placement, censuses, {50});
    const auto plan = recovery::build_car_plan(
        placement, code, balanced.solutions, 4096, node);
    const auto summary = recovery::car_traffic(
        balanced.solutions, placement.topology().num_racks(),
        scenario.failed_rack);
    EXPECT_EQ(plan.cross_rack_bytes(), summary.total_bytes(4096));
    EXPECT_EQ(plan.outputs.size(), scenario.lost.size());
  }
}

}  // namespace
}  // namespace car
