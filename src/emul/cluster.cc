#include "emul/cluster.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "emul/calendar_queue.h"
#include "emul/executor.h"
#include "recovery/compute.h"
#include "recovery/scheduler.h"
#include "recovery/slice.h"
#include "util/buffer_pool.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace car::emul {

namespace {

using recovery::BufferRef;
using recovery::PlanStep;
using recovery::SliceInfo;
using recovery::SlicePlan;
using recovery::StepKind;

/// Buffer keys: bit 63 selects step outputs; chunks pack (stripe, index)
/// as stripe << 24 | index.  Out-of-range ids are rejected rather than
/// silently colliding with other chunks or with the step namespace.
constexpr std::uint64_t kStepBit = 1ULL << 63;
constexpr unsigned kChunkIndexBits = 24;
constexpr std::uint64_t kMaxChunkIndex = (1ULL << kChunkIndexBits) - 1;
constexpr std::uint64_t kMaxStripe = (1ULL << (63 - kChunkIndexBits)) - 1;

std::uint64_t chunk_key(cluster::StripeId stripe, std::size_t chunk_index) {
  if (static_cast<std::uint64_t>(stripe) > kMaxStripe) {
    throw std::out_of_range("emul: stripe id exceeds 2^39-1 key range");
  }
  if (static_cast<std::uint64_t>(chunk_index) > kMaxChunkIndex) {
    throw std::out_of_range("emul: chunk index exceeds 2^24-1 key range");
  }
  return (static_cast<std::uint64_t>(stripe) << kChunkIndexBits) |
         static_cast<std::uint64_t>(chunk_index);
}

std::uint64_t step_key(std::size_t step_id) {
  if ((static_cast<std::uint64_t>(step_id) & kStepBit) != 0) {
    throw std::out_of_range("emul: step id exceeds 2^63-1 key range");
  }
  return kStepBit | static_cast<std::uint64_t>(step_id);
}

std::uint64_t key_of(const BufferRef& ref) {
  return ref.kind == BufferRef::Kind::kChunk
             ? chunk_key(ref.stripe, ref.chunk_index)
             : step_key(ref.step_id);
}

// ---- Phase-2 replay machinery ------------------------------------------
//
// Both replay engines pop events in the identical global (time, id) order;
// these adapters let one generic event handler drive either queue type.

using ReplayEntry = std::pair<double, std::uint64_t>;
using ReplayHeap =
    std::priority_queue<ReplayEntry, std::vector<ReplayEntry>, std::greater<>>;

inline void replay_push(ReplayHeap& queue, double time, std::uint64_t id) {
  queue.emplace(time, id);
}
inline void replay_push(CalendarQueue& queue, double time, std::uint64_t id) {
  queue.push(time, id);
}

// Event keys for the lock-free safe window, as two orderable 64-bit words:
// a non-negative IEEE-754 double's bit pattern, read as an unsigned
// integer, orders exactly like the double (+inf included), so the time
// component of a (time, id) key fits one atomic word.  Event times here are
// always non-negative — the virtual clock starts at 0 and link
// reservations never regress (execute_arena_impl CHECKs the start).
inline std::uint64_t time_bits(double time) noexcept {
  return std::bit_cast<std::uint64_t>(time);
}
constexpr std::uint64_t kInfTimeBits =
    std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity());
constexpr std::uint64_t kDoneId = std::numeric_limits<std::uint64_t>::max();

inline bool key_less(std::uint64_t t1, std::uint64_t i1, std::uint64_t t2,
                     std::uint64_t i2) noexcept {
  return t1 < t2 || (t1 == t2 && i1 < i2);
}

/// One replay shard's published frontier (see the protocol comment at
/// run_calendar_replay in execute_arena_impl).  Padded to a cache line so
/// peers polling one shard's slot never false-share another's.
struct alignas(64) ReplayTopSlot {
  std::atomic<std::uint64_t> time{0};
  std::atomic<std::uint64_t> id{0};
};

/// One spin-wait step: pause hints while the wait is young, then yield so a
/// stalled peer (oversubscribed machine) can run.
inline void relax_cpu(std::size_t idle) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (idle < 64) {
    __builtin_ia32_pause();
    return;
  }
#elif defined(__aarch64__)
  if (idle < 64) {
    asm volatile("yield");
    return;
  }
#endif
  (void)idle;
  std::this_thread::yield();
}

}  // namespace

struct Cluster::Impl {
  struct NodeStore {
    mutable util::Mutex mu;
    std::unordered_map<std::uint64_t, rs::Chunk> buffers CAR_GUARDED_BY(mu);
  };

  explicit Impl(ClockMode mode) : clock(mode) {}

  EmulClock clock;
  std::vector<NodeStore> stores;
  std::vector<std::unique_ptr<SerialLink>> node_up;
  std::vector<std::unique_ptr<SerialLink>> node_down;
  std::vector<std::unique_ptr<SerialLink>> rack_up;
  std::vector<std::unique_ptr<SerialLink>> rack_down;
  std::vector<util::Mutex> cpu;  // serialises compute per emulated node

  // Liveness state: which nodes have been dropped (dead for the run), the
  // guarded recovery destinations (counted per node so guards nest, with a
  // generation stamp per node for diagnostics — every generation of a
  // rolling recovery stays protected, not just the newest), and a drop
  // epoch that lets an execute() in flight notice a concurrent drop and
  // abort.
  struct GuardEntry {
    std::size_t count = 0;
    std::uint64_t generation = 0;
  };
  mutable util::Mutex state_mu;
  std::vector<bool> dropped CAR_GUARDED_BY(state_mu);
  std::unordered_map<cluster::NodeId, GuardEntry> guards
      CAR_GUARDED_BY(state_mu);
  std::uint64_t guard_generations CAR_GUARDED_BY(state_mu) = 0;
  std::atomic<std::uint64_t> drop_epoch{0};

  // Pooled staging + store capacity: all wire copies, compute scratch, and
  // store buffers created by execution come from here, so steady-state
  // recovery allocates nothing per slice (see util/buffer_pool.h).
  util::BufferPool pool;

  const rs::Chunk* find(cluster::NodeId node, std::uint64_t key) const {
    const auto& store = stores[node];
    util::MutexLock lock(store.mu);
    const auto it = store.buffers.find(key);
    return it == store.buffers.end() ? nullptr : &it->second;
  }

  void put(cluster::NodeId node, std::uint64_t key, rs::Chunk data) {
    auto& store = stores[node];
    rs::Chunk evicted;
    {
      util::MutexLock lock(store.mu);
      rs::Chunk& slot = store.buffers[key];
      evicted = std::move(slot);
      slot = std::move(data);
    }
    pool.recycle(std::move(evicted));  // replaced capacity goes back
  }

  /// Ranged write: materialise the buffer at full_size (from the pool when
  /// absent or mis-sized) and copy `data` into [offset, offset + size).
  /// The store lock serialises writers of one buffer; distinct slices touch
  /// disjoint ranges, so the plan's slice coverage assembles the chunk
  /// exactly.  Once a buffer is established at full_size it is never
  /// re-materialised, which keeps concurrent readers' pointers valid
  /// (unordered_map references are stable; see the compute gather below).
  void write_range(cluster::NodeId node, std::uint64_t key,
                   std::uint64_t full_size, std::uint64_t offset,
                   std::span<const std::uint8_t> data) {
    CAR_CHECK(offset + data.size() <= full_size,
              "Cluster::write_buffer_range: slice range exceeds the buffer");
    auto& store = stores[node];
    rs::Chunk evicted;
    {
      util::MutexLock lock(store.mu);
      rs::Chunk& slot = store.buffers[key];
      if (slot.size() != full_size) {
        if (slot.capacity() >= full_size) {
          slot.resize(full_size);
        } else {
          evicted = std::move(slot);
          slot = pool.take(full_size);
        }
      }
      if (!data.empty()) {
        std::memcpy(slot.data() + offset, data.data(), data.size());
      }
    }
    pool.recycle(std::move(evicted));
  }

  bool is_dropped(cluster::NodeId node) const {
    util::MutexLock lock(state_mu);
    return dropped[node];
  }

  void check_alive(cluster::NodeId node, const char* what) const {
    CAR_CHECK_STATE(!is_dropped(node),
                    std::string(what) + ": node " + std::to_string(node) +
                        " has been dropped");
  }
};

Cluster::Cluster(cluster::Topology topology, EmulConfig config)
    : impl_(std::make_unique<Impl>(config.clock_mode)),
      topology_(std::move(topology)),
      config_(config) {
  CAR_CHECK(config_.node_bps > 0, "EmulConfig: node_bps must be positive");
  CAR_CHECK(config_.oversubscription > 0,
            "EmulConfig: oversubscription must be positive");
  CAR_CHECK(config_.page_bytes > 0, "EmulConfig: page_bytes must be > 0");
  CAR_CHECK(config_.max_parallel_steps > 0,
            "EmulConfig: max_parallel_steps must be > 0");
  CAR_CHECK(config_.virtual_gf_bps > 0,
            "EmulConfig: virtual_gf_bps must be positive");
  const std::size_t n = topology_.num_nodes();
  const std::size_t r = topology_.num_racks();
  impl_->stores = std::vector<Impl::NodeStore>(n);
  impl_->cpu = std::vector<util::Mutex>(n);
  impl_->dropped.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    impl_->node_up.push_back(std::make_unique<SerialLink>(config_.node_bps));
    impl_->node_down.push_back(std::make_unique<SerialLink>(config_.node_bps));
  }
  for (std::size_t i = 0; i < r; ++i) {
    const double rack_bps =
        config_.rack_link_bps
            ? *config_.rack_link_bps
            : static_cast<double>(topology_.nodes_in_rack_count(i)) *
                  config_.node_bps / config_.oversubscription;
    impl_->rack_up.push_back(std::make_unique<SerialLink>(rack_bps));
    impl_->rack_down.push_back(std::make_unique<SerialLink>(rack_bps));
  }
}

Cluster::~Cluster() = default;

EmulClock& Cluster::clock() noexcept { return impl_->clock; }

void Cluster::store_chunk(cluster::NodeId node, cluster::StripeId stripe,
                          std::size_t chunk_index, rs::Chunk data) {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::store_chunk: bad node id");
  }
  impl_->check_alive(node, "Cluster::store_chunk");
  impl_->put(node, chunk_key(stripe, chunk_index), std::move(data));
}

const rs::Chunk* Cluster::find_chunk(cluster::NodeId node,
                                     cluster::StripeId stripe,
                                     std::size_t chunk_index) const {
  if (node >= topology_.num_nodes()) return nullptr;
  return impl_->find(node, chunk_key(stripe, chunk_index));
}

const rs::Chunk* Cluster::find_step_output(cluster::NodeId node,
                                           std::size_t step_id) const {
  if (node >= topology_.num_nodes()) return nullptr;
  return impl_->find(node, step_key(step_id));
}

const rs::Chunk* Cluster::find_buffer(cluster::NodeId node,
                                      const recovery::BufferRef& ref) const {
  if (node >= topology_.num_nodes()) return nullptr;
  return impl_->find(node, key_of(ref));
}

void Cluster::put_buffer(cluster::NodeId node, const recovery::BufferRef& ref,
                         rs::Chunk data) {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::put_buffer: bad node id");
  }
  impl_->check_alive(node, "Cluster::put_buffer");
  impl_->put(node, key_of(ref), std::move(data));
}

void Cluster::write_buffer_range(cluster::NodeId node,
                                 const recovery::BufferRef& ref,
                                 std::uint64_t full_size, std::uint64_t offset,
                                 std::span<const std::uint8_t> data) {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::write_buffer_range: bad node id");
  }
  impl_->check_alive(node, "Cluster::write_buffer_range");
  impl_->write_range(node, key_of(ref), full_size, offset, data);
}

util::BufferPool& Cluster::buffer_pool() noexcept { return impl_->pool; }

void Cluster::erase_node(cluster::NodeId node) {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::erase_node: bad node id");
  }
  auto& store = impl_->stores[node];
  std::vector<rs::Chunk> evicted;
  {
    util::MutexLock lock(store.mu);
    evicted.reserve(store.buffers.size());
    for (auto& [key, buf] : store.buffers) evicted.push_back(std::move(buf));
    store.buffers.clear();
  }
  for (auto& buf : evicted) impl_->pool.recycle(std::move(buf));
}

void Cluster::drop_node(cluster::NodeId node) {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::drop_node: bad node id");
  }
  {
    util::MutexLock lock(impl_->state_mu);
    const auto it = impl_->guards.find(node);
    if (it != impl_->guards.end()) {
      CAR_CHECK_FAIL(
          "Cluster::drop_node: refusing to drop node " +
          std::to_string(node) +
          " — it is a guarded replacement target (generation " +
          std::to_string(it->second.generation) +
          "); a recovery destination cannot fail mid-plan, even one from an "
          "earlier re-plan generation whose published outputs are still "
          "live — choose a fresh replacement and re-plan instead");
    }
    if (impl_->dropped[node]) return;  // idempotent
    impl_->dropped[node] = true;
  }
  impl_->drop_epoch.fetch_add(1, std::memory_order_release);
  erase_node(node);
}

bool Cluster::is_dropped(cluster::NodeId node) const {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::is_dropped: bad node id");
  }
  return impl_->is_dropped(node);
}

std::uint64_t Cluster::add_replacement_guard(cluster::NodeId node) {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::add_replacement_guard: bad node id");
  }
  util::MutexLock lock(impl_->state_mu);
  CAR_CHECK(!impl_->dropped[node],
            "Cluster::add_replacement_guard: node " + std::to_string(node) +
                " has been dropped — a dead node cannot serve as a recovery "
                "destination");
  auto& entry = impl_->guards[node];
  if (entry.count == 0) entry.generation = ++impl_->guard_generations;
  ++entry.count;
  return entry.generation;
}

void Cluster::remove_replacement_guard(cluster::NodeId node) {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::remove_replacement_guard: bad node id");
  }
  util::MutexLock lock(impl_->state_mu);
  const auto it = impl_->guards.find(node);
  CAR_CHECK(it != impl_->guards.end(),
            "Cluster::remove_replacement_guard: node " + std::to_string(node) +
                " holds no replacement guard");
  if (--it->second.count == 0) impl_->guards.erase(it);
}

std::vector<cluster::NodeId> Cluster::guarded_replacements() const {
  util::MutexLock lock(impl_->state_mu);
  std::vector<cluster::NodeId> out;
  out.reserve(impl_->guards.size());
  for (const auto& [node, entry] : impl_->guards) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

void Cluster::clear_step_outputs() {
  for (auto& store : impl_->stores) {
    std::vector<rs::Chunk> evicted;
    {
      util::MutexLock lock(store.mu);
      for (auto& [key, buf] : store.buffers) {
        if ((key & kStepBit) != 0) evicted.push_back(std::move(buf));
      }
      std::erase_if(store.buffers,
                    [](const auto& kv) { return (kv.first & kStepBit) != 0; });
    }
    for (auto& buf : evicted) impl_->pool.recycle(std::move(buf));
  }
}

LinkPath Cluster::path(cluster::NodeId src, cluster::NodeId dst) const {
  if (src >= topology_.num_nodes() || dst >= topology_.num_nodes()) {
    throw std::out_of_range("Cluster::path: bad node id");
  }
  if (src == dst) return LinkPath{};
  const auto src_rack = topology_.rack_of(src);
  const auto dst_rack = topology_.rack_of(dst);
  std::vector<SerialLink*> hops;
  hops.push_back(impl_->node_up[src].get());
  if (src_rack != dst_rack) {
    hops.push_back(impl_->rack_up[src_rack].get());
    hops.push_back(impl_->rack_down[dst_rack].get());
  }
  hops.push_back(impl_->node_down[dst].get());
  return LinkPath{std::move(hops)};
}

SerialLink& Cluster::node_up_link(cluster::NodeId node) {
  return *impl_->node_up.at(node);
}
SerialLink& Cluster::node_down_link(cluster::NodeId node) {
  return *impl_->node_down.at(node);
}
SerialLink& Cluster::rack_up_link(cluster::RackId rack) {
  return *impl_->rack_up.at(rack);
}
SerialLink& Cluster::rack_down_link(cluster::RackId rack) {
  return *impl_->rack_down.at(rack);
}

std::uint64_t Cluster::stripe_seed(std::uint64_t seed,
                                   cluster::StripeId stripe) noexcept {
  // splitmix64 finaliser over the stripe id, xored into the run seed: good
  // avalanche, and stripe s's stream is independent of every other stripe's.
  std::uint64_t x =
      static_cast<std::uint64_t>(stripe) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return seed ^ (x ^ (x >> 31));
}

std::unordered_map<cluster::StripeId, std::vector<rs::Chunk>>
Cluster::populate_sampled(const cluster::Placement& placement,
                          const rs::Code& code, std::uint64_t chunk_size,
                          std::uint64_t seed,
                          std::span<const cluster::StripeId> stripes) {
  CAR_CHECK(chunk_size > 0,
            "Cluster::populate_sampled: chunk_size must be > 0");
  std::unordered_map<cluster::StripeId, std::vector<rs::Chunk>> originals;
  originals.reserve(stripes.size());
  for (const cluster::StripeId s : stripes) {
    CAR_CHECK(s < placement.num_stripes(),
              "Cluster::populate_sampled: stripe id outside the placement");
    if (originals.contains(s)) continue;
    util::Rng rng(stripe_seed(seed, s));
    std::vector<rs::Chunk> data(code.k(), rs::Chunk(chunk_size));
    for (auto& chunk : data) rng.fill_bytes(chunk);
    std::vector<rs::ChunkView> views(data.begin(), data.end());
    auto stripe = code.encode_stripe(views);
    for (std::size_t c = 0; c < stripe.size(); ++c) {
      store_chunk(placement.node_of(s, c), s, c, stripe[c]);
    }
    originals.emplace(s, std::move(stripe));
  }
  return originals;
}

std::vector<std::vector<rs::Chunk>> Cluster::populate(
    const cluster::Placement& placement, const rs::Code& code,
    std::uint64_t chunk_size, util::Rng& rng) {
  CAR_CHECK(chunk_size > 0, "Cluster::populate: chunk_size must be > 0");
  std::vector<std::vector<rs::Chunk>> originals;
  originals.reserve(placement.num_stripes());
  for (cluster::StripeId s = 0; s < placement.num_stripes(); ++s) {
    std::vector<rs::Chunk> data(code.k(), rs::Chunk(chunk_size));
    for (auto& chunk : data) rng.fill_bytes(chunk);
    std::vector<rs::ChunkView> views(data.begin(), data.end());
    auto stripe = code.encode_stripe(views);
    for (std::size_t c = 0; c < stripe.size(); ++c) {
      store_chunk(placement.node_of(s, c), s, c, stripe[c]);
    }
    originals.push_back(std::move(stripe));
  }
  return originals;
}

ExecutionReport Cluster::execute(const recovery::RecoveryPlan& plan) {
  // Degenerate lowering: one slice per step with identical ids, deps, and
  // bytes — the sliced core below then performs the exact same computation
  // a chunk-granular executor would.
  return execute(recovery::slice_plan(
      plan, std::max<std::uint64_t>(plan.chunk_size, 1)));
}

ExecutionReport Cluster::execute(const recovery::SlicePlan& plan) {
  const std::size_t n_steps = plan.steps.size();
  ExecutionReport report;
  report.per_rack_cross_bytes.assign(topology_.num_racks(), 0);
  if (n_steps == 0) return report;

  const auto indegrees =
      recovery::step_indegrees(std::span<const PlanStep>(plan.steps));
  const auto dependents =
      recovery::step_dependents(std::span<const PlanStep>(plan.steps));
  const bool virtual_time = config_.clock_mode == ClockMode::kVirtual;
  EmulClock& clock = impl_->clock;
  util::Mutex report_mu;

  // The recovery destination must outlive the plan: guard it so a
  // concurrent drop_node(replacement) fails loudly instead of racing the
  // final publish.  Counted, so an outer runtime's guard survives.
  // Released on every exit path.
  struct GuardScope {
    Cluster* cluster;
    cluster::NodeId node;
    ~GuardScope() { cluster->remove_replacement_guard(node); }
  };
  add_replacement_guard(plan.replacement);
  GuardScope guard_scope{this, plan.replacement};
  impl_->check_alive(plan.replacement, "Cluster::execute: replacement");

  auto run_transfer = [&](const PlanStep& step, const SliceInfo& slice) {
    impl_->check_alive(step.src, "Cluster::execute: transfer source");
    impl_->check_alive(step.dst, "Cluster::execute: transfer destination");
    const rs::Chunk* src_buf = impl_->find(step.src, key_of(step.payload));
    CAR_CHECK_STATE(src_buf != nullptr,
                    "Cluster::execute: transfer payload missing on source "
                    "node");
    // Buffer-size contract: the plan's declared chunk size must match the
    // actual payload, or every byte of traffic accounting downstream lies
    // (and the slice grid would read past the buffer).
    CAR_CHECK_STATE(src_buf->size() == plan.chunk_size,
                    "Cluster::execute: transfer size mismatch: plan declares " +
                        std::to_string(plan.chunk_size) +
                        " bytes but payload holds " +
                        std::to_string(src_buf->size()));
    // Stage the slice through a pooled lease — the wire payload.  Reading
    // slice s here is safe against concurrent writers: they only touch
    // other slices' (disjoint) ranges, and a buffer is never re-materialised
    // once established at full size (see Impl::write_range).
    util::BufferLease wire = impl_->pool.acquire(
        static_cast<std::size_t>(slice.length));
    std::memcpy(wire.data(), src_buf->data() + slice.offset, slice.length);
    if (step.src == step.dst) {
      // Loopback: the buffer never leaves the node, so no link is reserved
      // and no traffic is reported.  The staged copy makes the self-write
      // well-defined.
      impl_->write_range(step.dst, key_of(step.payload), plan.chunk_size,
                         slice.offset, {wire.data(), wire.size()});
      return;
    }
    if (!virtual_time) {
      clock.sleep_until(path(step.src, step.dst)
                            .reserve(clock.now(), step.bytes,
                                     config_.page_bytes));
    }
    impl_->write_range(step.dst, key_of(step.payload), plan.chunk_size,
                       slice.offset, {wire.data(), wire.size()});

    const std::uint64_t moved = slice.length;  // == step.bytes by the grid
    const auto src_rack = topology_.rack_of(step.src);
    util::MutexLock lock(report_mu);
    if (src_rack != topology_.rack_of(step.dst)) {
      report.cross_rack_bytes += moved;
      report.per_rack_cross_bytes[src_rack] += moved;
    } else {
      report.intra_rack_bytes += moved;
    }
  };

  auto run_compute = [&](const PlanStep& step, const SliceInfo& slice) {
    impl_->check_alive(step.node, "Cluster::execute: compute node");
    util::MutexLock cpu_lock(impl_->cpu[step.node]);

    // Gather input buffers.  unordered_map references are stable under
    // concurrent inserts of other keys (guarded by the store mutex inside
    // find), and nothing erases or re-materialises buffers during execution.
    std::vector<const rs::Chunk*> inputs;
    inputs.reserve(step.inputs.size());
    for (const auto& in : step.inputs) {
      const rs::Chunk* buf = impl_->find(step.node, key_of(in.buffer));
      CAR_CHECK_STATE(buf != nullptr,
                      "Cluster::execute: compute input missing on node");
      inputs.push_back(buf);
    }
    // The measured window covers the finite-field work — the paper's
    // "computation time" is the decoding arithmetic, not buffer management
    // (staging comes from the pool, outside the window).  The step contract
    // and the fused combine live in the shared helper, which
    // inject/runtime.cc executes identically.  The output is staged in a
    // lease (the kernels' combine output may not alias its inputs) and then
    // assembled into the base step's output buffer.
    util::BufferLease out = impl_->pool.acquire(
        static_cast<std::size_t>(slice.length));
    const auto t0 = std::chrono::steady_clock::now();
    recovery::execute_compute_slice(step, inputs, plan.chunk_size,
                                    slice.offset, {out.data(), out.size()},
                                    "Cluster::execute");
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    impl_->write_range(step.node, step_key(slice.base_step), plan.chunk_size,
                       slice.offset, {out.data(), out.size()});

    // Virtual mode charges modelled compute time in the timing pass instead
    // of the (nondeterministic) measured duration.
    if (virtual_time) return;
    util::MutexLock lock(report_mu);
    report.compute_s += dt.count();
    if (step.node == plan.replacement) {
      report.replacement_compute_s += dt.count();
    }
  };

  // Pass 1 — execute the DAG on the bounded worker pool: real bytes move,
  // real GF kernels run.  In real-time mode transfers also reserve links
  // and sleep, so this pass *is* the measurement; in virtual mode nothing
  // sleeps and timing is replayed deterministically below.  A node dropped
  // mid-execution bumps the drop epoch; the pool notices before issuing the
  // next step and aborts.
  Executor executor(config_.max_parallel_steps);
  const std::uint64_t epoch_at_start =
      impl_->drop_epoch.load(std::memory_order_acquire);
  const double t_start = clock.now();
  executor.run(
      n_steps, indegrees, dependents,
      [&](std::size_t id) {
        const PlanStep& step = plan.steps[id];
        const SliceInfo& slice = plan.info[id];
        if (step.kind == StepKind::kTransfer) {
          run_transfer(step, slice);
        } else {
          run_compute(step, slice);
        }
      },
      [&] {
        return impl_->drop_epoch.load(std::memory_order_acquire) !=
               epoch_at_start;
      });

  if (virtual_time) {
    // Pass 2 — deterministic timing replay.  Steps are processed in
    // (virtual start time, id) order from a min-heap, so link reservations
    // happen in a reproducible sequence regardless of how the worker pool
    // interleaved the byte movement above.  Transfers reserve the same
    // page-wise path as real-time mode; computes are charged
    // step.bytes / virtual_gf_bps.
    auto pending = indegrees;
    std::vector<double> start_at(n_steps, t_start);
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
    for (std::size_t id = 0; id < n_steps; ++id) {
      if (pending[id] == 0) ready.emplace(t_start, id);
    }
    double end = t_start;
    while (!ready.empty()) {
      const auto [at, id] = ready.top();
      ready.pop();
      const PlanStep& step = plan.steps[id];
      double finish = at;
      if (step.kind == StepKind::kTransfer) {
        if (step.src != step.dst) {
          finish = path(step.src, step.dst)
                       .reserve(at, step.bytes, config_.page_bytes);
        }
      } else {
        const double dt =
            static_cast<double>(step.bytes) / config_.virtual_gf_bps;
        finish = at + dt;
        report.compute_s += dt;
        if (step.node == plan.replacement) report.replacement_compute_s += dt;
      }
      end = std::max(end, finish);
      for (const std::size_t dep : dependents[id]) {
        start_at[dep] = std::max(start_at[dep], finish);
        if (--pending[dep] == 0) ready.emplace(start_at[dep], dep);
      }
    }
    clock.advance_to(end);
    report.wall_s = end - t_start;
  } else {
    report.wall_s = clock.now() - t_start;
  }

  // Publish recovered chunks as regular chunk replicas on the replacement.
  // Output ids are *base* step ids — all slices of the producing step have
  // completed (the DAG drained), so the assembled buffer is whole.  The
  // replica copy is drawn from the pool like every other buffer.
  for (const auto& out : plan.outputs) {
    const rs::Chunk* buf = impl_->find(plan.replacement, step_key(out.step_id));
    CAR_CHECK_STATE(buf != nullptr,
                    "Cluster::execute: recovered chunk missing");
    rs::Chunk copy = impl_->pool.take(buf->size());
    if (!buf->empty()) std::memcpy(copy.data(), buf->data(), buf->size());
    impl_->put(plan.replacement, chunk_key(out.stripe, out.chunk_index),
               std::move(copy));
  }
  return report;
}

ExecutionReport Cluster::execute_arena(const recovery::PlanArena& plan,
                                       const ArenaExecOptions& options) {
  return execute_arena_impl(plan, options, nullptr);
}

ExecutionReport Cluster::execute_arena_streaming(
    const recovery::PlanArena& plan, const ArenaExecOptions& options,
    ArenaStreamFeed& feed) {
  // Streaming interleaves with the producer through the watermark; the heap
  // engine is kept as the barrier-mode reference implementation and gains
  // nothing from overlap, so it is not wired up here.
  CAR_CHECK(options.replay_engine == ReplayEngine::kCalendar,
            "Cluster::execute_arena_streaming: streaming requires the "
            "calendar replay engine");
  return execute_arena_impl(plan, options, &feed);
}

ExecutionReport Cluster::execute_arena_impl(const recovery::PlanArena& plan,
                                            const ArenaExecOptions& options,
                                            ArenaStreamFeed* feed) {
  // A wall-clock pass cannot skip payload movement without changing what it
  // measures, and the sharded payload pass relies on the timing replay for
  // determinism — so the arena path is virtual-clock only.
  impl_->clock.require_virtual("Cluster::execute_arena");
  CAR_CHECK(options.shards >= 1,
            "Cluster::execute_arena: shards must be >= 1");
  CAR_CHECK(options.replay_shards >= 1,
            "Cluster::execute_arena: replay_shards must be >= 1");
  const bool streaming = feed != nullptr;

  const std::uint64_t n_base = plan.num_base_steps();
  ExecutionReport report;
  report.per_rack_cross_bytes.assign(topology_.num_racks(), 0);
  if (n_base == 0) return report;
  if (!streaming) {
    CAR_CHECK(options.shards == 1 || plan.stripe_closed(),
              "Cluster::execute_arena: sharded execution requires a "
              "stripe-closed plan (windowed schedules add cross-stripe deps; "
              "run them with shards == 1)");
    CAR_CHECK(options.replay_shards == 1 || plan.stripe_closed(),
              "Cluster::execute_arena: sharded replay requires a "
              "stripe-closed plan (windowed schedules add cross-stripe deps; "
              "run them with replay_shards == 1)");
  }
  // Streaming defers the closure CHECK until the producer finishes: the
  // flag itself is being written during appends.  The producer contract —
  // publish whole stripes of a stripe-closed plan only — is re-CHECKed
  // after the workers join.

  EmulClock& clock = impl_->clock;
  struct GuardScope {
    Cluster* cluster;
    cluster::NodeId node;
    ~GuardScope() { cluster->remove_replacement_guard(node); }
  };
  add_replacement_guard(plan.replacement());
  GuardScope guard_scope{this, plan.replacement()};
  impl_->check_alive(plan.replacement(),
                     "Cluster::execute_arena: replacement");

  std::vector<cluster::StripeId> sampled = options.sampled_stripes;
  std::sort(sampled.begin(), sampled.end());
  auto is_real = [&](cluster::StripeId s) {
    return !options.metadata_only ||
           std::binary_search(sampled.begin(), sampled.end(), s);
  };

  // Liveness snapshot: shards check it lock-free per step; a node dropped
  // *during* execution bumps the drop epoch instead, which aborts the run
  // exactly like execute()'s pool cancellation.
  std::vector<char> dead;
  {
    util::MutexLock lock(impl_->state_mu);
    dead.assign(impl_->dropped.begin(), impl_->dropped.end());
  }
  auto check_alive_fast = [&](cluster::NodeId nd, const char* what) {
    CAR_CHECK_STATE(dead[nd] == 0, std::string(what) + ": node " +
                                       std::to_string(nd) +
                                       " has been dropped");
  };

  const std::uint64_t num_slices = plan.num_slices();
  const std::uint64_t chunk = plan.chunk_size();
  const std::uint64_t epoch_at_start =
      impl_->drop_epoch.load(std::memory_order_acquire);
  const double t_start = clock.now();
  // The lock-free replay window compares event times as IEEE-754 bit
  // patterns (see time_bits), which is order-preserving only for
  // non-negative times.  Always true — the virtual clock starts at 0 and
  // never runs backwards — but the invariant is load-bearing, so CHECK it.
  CAR_CHECK_STATE(t_start >= 0.0,
                  "Cluster::execute_arena: negative virtual clock");

  // Phase 1 — payload movement and byte accounting, sharded by stripe.
  // Each shard walks the arena in id order; forward deps plus stripe
  // closure (or shards == 1) guarantee every dependency a step needs was
  // produced earlier in the same walk.  Accounting goes to per-shard
  // accumulators merged in shard order below, so totals never depend on
  // thread interleaving.
  struct ShardTotals {
    std::uint64_t cross = 0;
    std::uint64_t intra = 0;
    std::vector<std::uint64_t> per_rack;
  };
  std::vector<ShardTotals> totals(options.shards);
  for (auto& t : totals) t.per_rack.assign(topology_.num_racks(), 0);

  util::Mutex error_mu;
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  auto record_failure = [&]() {
    failed.store(true, std::memory_order_release);
    util::MutexLock lock(error_mu);
    if (!error) error = std::current_exception();
  };

  auto run_shard = [&](std::size_t shard) {
    try {
      ShardTotals& acc = totals[shard];
      // Barrier mode sees every row up front; streaming chases the
      // producer's watermark, spinning out the gaps.
      std::uint64_t limit = streaming ? feed->published() : n_base;
      std::size_t idle = 0;
      for (std::uint64_t base = 0; base < n_base; ++base) {
        while (base == limit) {
          if (failed.load(std::memory_order_acquire)) return;
          const std::uint64_t published = feed->published();
          if (published > limit) {
            limit = published;
            idle = 0;
            break;
          }
          CAR_CHECK_STATE(!feed->closed() || feed->published() >= n_base,
                          "Cluster::execute_arena_streaming: producer closed "
                          "before publishing every base step");
          relax_cpu(idle++);
        }
        if (static_cast<std::uint64_t>(plan.stripe(base)) % options.shards !=
            shard) {
          continue;
        }
        if (failed.load(std::memory_order_acquire)) return;
        CAR_CHECK_STATE(impl_->drop_epoch.load(std::memory_order_acquire) ==
                            epoch_at_start,
                        "Cluster::execute_arena: node dropped "
                        "mid-execution; aborting plan");
        if (plan.kind(base) == StepKind::kTransfer) {
          const cluster::NodeId src = plan.src(base);
          const cluster::NodeId dst = plan.dst(base);
          check_alive_fast(src, "Cluster::execute_arena: transfer source");
          check_alive_fast(dst,
                           "Cluster::execute_arena: transfer destination");
          if (src != dst) {
            const auto src_rack = topology_.rack_of(src);
            if (src_rack != topology_.rack_of(dst)) {
              acc.cross += chunk;
              acc.per_rack[src_rack] += chunk;
            } else {
              acc.intra += chunk;
            }
          }
          if (!is_real(plan.stripe(base))) continue;
          const std::uint64_t key = key_of(plan.payload(base));
          const rs::Chunk* src_buf = impl_->find(src, key);
          CAR_CHECK_STATE(src_buf != nullptr,
                          "Cluster::execute_arena: transfer payload missing "
                          "on source node");
          CAR_CHECK_STATE(
              src_buf->size() == chunk,
              "Cluster::execute_arena: transfer size mismatch: plan "
              "declares " +
                  std::to_string(chunk) + " bytes but payload holds " +
                  std::to_string(src_buf->size()));
          // One whole-chunk staged copy: the slices of a transfer carry
          // disjoint ranges of these same bytes, so slice-wise movement
          // composes to exactly this (and the timing replay below still
          // reserves links slice by slice).
          util::BufferLease wire =
              impl_->pool.acquire(static_cast<std::size_t>(chunk));
          std::memcpy(wire.data(), src_buf->data(),
                      static_cast<std::size_t>(chunk));
          impl_->write_range(dst, key, chunk, 0, {wire.data(), wire.size()});
        } else {
          const cluster::NodeId node = plan.node(base);
          check_alive_fast(node, "Cluster::execute_arena: compute node");
          if (!is_real(plan.stripe(base))) continue;
          util::MutexLock cpu_lock(impl_->cpu[node]);
          std::vector<const rs::Chunk*> inputs;
          const std::size_t n_in = plan.num_inputs(base);
          inputs.reserve(n_in);
          for (std::size_t i = 0; i < n_in; ++i) {
            const rs::Chunk* buf =
                impl_->find(node, key_of(plan.input(base, i).buffer));
            CAR_CHECK_STATE(buf != nullptr,
                            "Cluster::execute_arena: compute input missing "
                            "on node");
            inputs.push_back(buf);
          }
          for (std::uint64_t s = 0; s < num_slices; ++s) {
            // Real-byte stripes are the sampled few, so materialising the
            // sliced step here stays off the metadata hot path.
            const PlanStep step = plan.step(plan.sliced_id(base, s));
            util::BufferLease out = impl_->pool.acquire(
                static_cast<std::size_t>(plan.slice_length(s)));
            recovery::execute_compute_slice(step, inputs, chunk,
                                            plan.slice_offset(s),
                                            {out.data(), out.size()},
                                            "Cluster::execute_arena");
            impl_->write_range(node, step_key(base), chunk,
                               plan.slice_offset(s),
                               {out.data(), out.size()});
          }
        }
      }
    } catch (...) {
      record_failure();
    }
  };

  // Phase-1 workers.  Barrier mode runs them to completion here; streaming
  // spawns them and lets them overlap the replay below (payload movement
  // and the timing replay touch disjoint state — node buffers vs. links).
  std::vector<std::thread> payload_workers;
  if (!streaming && options.shards == 1) {
    run_shard(0);
  } else {
    payload_workers.reserve(options.shards);
    for (std::size_t w = 0; w < options.shards; ++w) {
      payload_workers.emplace_back(run_shard, w);
    }
  }
  if (!streaming) {
    for (auto& worker : payload_workers) worker.join();
    payload_workers.clear();
    if (error) std::rethrow_exception(error);
  }

  // Phase 2 — deterministic timing replay over the sliced id grid: the
  // identical (start time, id) min-queue walk execute() runs, driven from
  // the columns instead of materialised steps.
  //
  // The pop stream is lexicographically monotone in (time, id): every
  // dependent inserted while processing event (t, id) has start >= finish
  // >= t and — forward deps — a strictly larger base step, hence a larger
  // sliced id at the same slice.  (That monotonicity is also what lets the
  // calendar queue below run at O(1) amortised per event.)  With a
  // stripe-closed plan the stream further decomposes into independent
  // per-stripe (and so per-shard) monotone streams, which is what lets
  // replay_shards > 1 reproduce the sequential walk exactly: each shard
  // drains its own queue only while its head is the global lexicographic
  // minimum of all shard heads (the owner-advances safe window), so
  // stateful link reservations and floating-point accumulation commit in
  // the global merge order.
  const std::uint64_t n_sliced = plan.num_sliced_steps();
  std::vector<std::uint32_t> pending(n_sliced, 0);
  if (!streaming) {
    for (std::uint64_t base = 0; base < n_base; ++base) {
      const auto degree = static_cast<std::uint32_t>(plan.deps(base).size());
      for (std::uint64_t s = 0; s < num_slices; ++s) {
        pending[plan.sliced_id(base, s)] = degree;
      }
    }
  }
  std::vector<double> start_at(n_sliced, t_start);
  double end = t_start;

  // Commit one transfer's link reservations.  Resolves the hop list on the
  // stack (the same links Cluster::path returns, without the per-event
  // vector) and reserves each hop's pages under a single lock acquisition:
  // per hop, the page sequence is exactly what the page-major
  // LinkPath::reserve loop would commit — hop states are mutually
  // independent, so reordering pages ACROSS hops cannot change any hop's
  // arithmetic — and the max of per-hop finishes equals the max over all
  // (hop, page) reservations because each hop's finishes are monotone.
  // Bit-identical, 4 lock round-trips instead of 4 * ceil(bytes / page).
  auto reserve_transfer = [&](std::uint64_t base, std::uint64_t slice,
                              double at) -> double {
    const cluster::NodeId src = plan.src(base);
    const cluster::NodeId dst = plan.dst(base);
    SerialLink* hops[LinkPath::kMaxHops];
    std::size_t n_hops = 0;
    hops[n_hops++] = impl_->node_up[src].get();
    const auto src_rack = topology_.rack_of(src);
    const auto dst_rack = topology_.rack_of(dst);
    if (src_rack != dst_rack) {
      hops[n_hops++] = impl_->rack_up[src_rack].get();
      hops[n_hops++] = impl_->rack_down[dst_rack].get();
    }
    hops[n_hops++] = impl_->node_down[dst].get();
    const std::uint64_t bytes = plan.step_bytes(base, slice);
    double finish = at;
    for (std::size_t h = 0; h < n_hops; ++h) {
      finish = std::max(finish,
                        hops[h]->reserve_pages(at, bytes, config_.page_bytes));
    }
    return finish;
  };

  // Process one popped event; dependents (same stripe by closure, so the
  // caller's own queue under sharded replay) are pushed onto `queue`.
  auto process_event = [&](double at, std::uint64_t id, auto& queue) {
    const std::uint64_t base = id / num_slices;
    const std::uint64_t slice = id % num_slices;
    double finish = at;
    if (plan.kind(base) == StepKind::kTransfer) {
      if (plan.src(base) != plan.dst(base)) {
        finish = reserve_transfer(base, slice, at);
      }
    } else {
      const double dt = static_cast<double>(plan.step_bytes(base, slice)) /
                        config_.virtual_gf_bps;
      finish = at + dt;
      report.compute_s += dt;
      if (plan.node(base) == plan.replacement()) {
        report.replacement_compute_s += dt;
      }
    }
    end = std::max(end, finish);
    for (const std::uint64_t dep_base : plan.dependents(base)) {
      const std::uint64_t did = plan.sliced_id(dep_base, slice);
      start_at[did] = std::max(start_at[did], finish);
      if (--pending[did] == 0) replay_push(queue, start_at[did], did);
    }
  };

  const std::size_t rshards = options.replay_shards;

  // Lock-free owner-advances window over per-shard calendar queues.  Each
  // shard owns one cache-line slot holding its published frontier — the
  // (time, id) key of its next event, as two atomic words — and drains its
  // queue only while its head is strictly below the minimum of every other
  // slot (and the stream cap), which serialises the stateful work in
  // exactly the global (time, id) order.  The slots replace the heap
  // engine's global mutex + condvar handoffs, whose wakeup latency
  // dominated sharded replay.
  //
  // Publication protocol: the owner stores id then time, both release; a
  // peer loads time then id, both acquire.  Because time is written last
  // and read first, a torn read can only pair an older time with a
  // same-or-newer id, and since a shard's frontier only ever increases,
  // such a pair never exceeds the owner's latest published key — every
  // bound a peer derives is conservative.  Visibility rides the same pair:
  // whichever publish the id load observed release-precedes it, so all
  // link reservations and accumulator writes the owner committed below
  // that key happen-before the peer's subsequent drain.  Draining is
  // mutually exclusive without a lock: were shards A and B draining
  // concurrently, A.top < (B's slot) <= B.top and B.top < (A's slot)
  // <= A.top — a contradiction (slots trail their owners' monotone tops).
  auto run_calendar_replay = [&](std::vector<CalendarQueue>& queues) {
    const std::size_t nq = queues.size();
    const std::uint64_t t0_bits = time_bits(t_start);
    std::vector<ReplayTopSlot> slots(nq);
    for (auto& slot : slots) {
      // (t_start, 0) lower-bounds every event, so no shard can overtake a
      // peer whose real frontier has not been published yet.
      slot.time.store(t0_bits, std::memory_order_relaxed);
      slot.id.store(0, std::memory_order_relaxed);
    }
    auto worker = [&](std::size_t shard) {
      CalendarQueue& queue = queues[shard];
      ReplayTopSlot& slot = slots[shard];
      std::uint64_t published_t = t0_bits;
      std::uint64_t published_i = 0;
      auto publish = [&](std::uint64_t tb, std::uint64_t ib) {
        if (tb == published_t && ib == published_i) return;
        slot.id.store(ib, std::memory_order_release);
        slot.time.store(tb, std::memory_order_release);
        published_t = tb;
        published_i = ib;
      };
      std::uint64_t ingested = 0;
      std::size_t idle = 0;
      // Drain-frontier watchdog: the shard's pop stream must be monotone in
      // (time, id) — the safe window, the slot publication protocol, and
      // the stateful commit order all assume it.  A queue that ever
      // surfaces an event behind the frontier (e.g. by misrouting a
      // sub-rung insert) would silently corrupt the replay, so fail fast.
      std::uint64_t drained_t = t0_bits;
      std::uint64_t drained_i = 0;
      try {
        for (;;) {
          if (failed.load(std::memory_order_acquire)) break;
          // Streaming: adopt newly published stripes (seed their pending
          // counters and zero-indegree events), then cap the window at the
          // watermark — every event of a not-yet-published row sorts at or
          // after (t_start, published * num_slices) because rows publish in
          // base-id order.
          std::uint64_t cap_t = kInfTimeBits;
          std::uint64_t cap_i = kDoneId;
          if (streaming) {
            std::uint64_t progress = feed->published();
            const bool finished = feed->closed();
            if (finished) progress = feed->published();
            CAR_CHECK_STATE(!finished || progress >= n_base,
                            "Cluster::execute_arena_streaming: producer "
                            "closed before publishing every base step");
            for (std::uint64_t base = ingested; base < progress; ++base) {
              if (static_cast<std::uint64_t>(plan.stripe(base)) % nq !=
                  shard) {
                continue;
              }
              const auto degree =
                  static_cast<std::uint32_t>(plan.deps(base).size());
              for (std::uint64_t s = 0; s < num_slices; ++s) {
                const std::uint64_t sid = plan.sliced_id(base, s);
                pending[sid] = degree;
                if (degree == 0) queue.push(t_start, sid);
              }
            }
            ingested = progress;
            if (!finished) {
              cap_t = t0_bits;
              cap_i = progress * num_slices;
            }
          }
          // Publish this shard's frontier: own head, capped by the stream
          // watermark (events of unpublished rows may land in any shard).
          std::uint64_t my_t = cap_t;
          std::uint64_t my_i = cap_i;
          if (!queue.empty()) {
            const CalendarQueue::Entry& head = queue.top();
            const std::uint64_t head_t = time_bits(head.time);
            if (key_less(head_t, head.key, my_t, my_i)) {
              my_t = head_t;
              my_i = head.key;
            }
          }
          publish(my_t, my_i);
          if (queue.empty() && cap_t == kInfTimeBits) break;
          // Safe window: strictly below every peer's published frontier
          // and below the stream cap.
          std::uint64_t bound_t = cap_t;
          std::uint64_t bound_i = cap_i;
          for (std::size_t other = 0; other < nq; ++other) {
            if (other == shard) continue;
            const std::uint64_t other_t =
                slots[other].time.load(std::memory_order_acquire);
            const std::uint64_t other_i =
                slots[other].id.load(std::memory_order_acquire);
            if (key_less(other_t, other_i, bound_t, bound_i)) {
              bound_t = other_t;
              bound_i = other_i;
            }
          }
          bool drained = false;
          while (!queue.empty()) {
            const CalendarQueue::Entry& head = queue.top();
            if (!key_less(time_bits(head.time), head.key, bound_t,
                          bound_i)) {
              break;
            }
            const CalendarQueue::Entry event = queue.pop();
            const std::uint64_t event_t = time_bits(event.time);
            CAR_CHECK_STATE(
                !key_less(event_t, event.key, drained_t, drained_i),
                "Cluster::execute_arena: calendar replay shard popped an "
                "event behind its drain frontier");
            drained_t = event_t;
            drained_i = event.key;
            process_event(event.time, event.key, queue);
            drained = true;
          }
          if (drained) {
            idle = 0;
          } else {
            relax_cpu(idle++);
          }
        }
      } catch (...) {
        record_failure();
      }
      // Terminal sentinel — also on error, so peers never stall on a dead
      // shard.
      slot.id.store(kDoneId, std::memory_order_release);
      slot.time.store(kInfTimeBits, std::memory_order_release);
    };
    std::vector<std::thread> replay_workers;
    replay_workers.reserve(nq);
    for (std::size_t shard = 0; shard < nq; ++shard) {
      replay_workers.emplace_back(worker, shard);
    }
    for (auto& thread : replay_workers) thread.join();
  };

  if (options.replay_engine == ReplayEngine::kHeap) {
    // The PR-9 reference engine, kept verbatim: one global binary heap, or
    // per-shard heaps merged under a mutex/condvar owner-advances window.
    // The differential tests and the CI scale-smoke diff compare the
    // calendar engine's output against this path bit for bit.
    using Entry = ReplayEntry;
    using Heap = ReplayHeap;
    if (rshards == 1) {
      Heap ready;
      for (std::uint64_t id = 0; id < n_sliced; ++id) {
        if (pending[id] == 0) ready.emplace(t_start, id);
      }
      while (!ready.empty()) {
        const auto [at, id] = ready.top();
        ready.pop();
        process_event(at, id, ready);
      }
    } else {
      std::vector<Heap> heaps(rshards);
      for (std::uint64_t id = 0; id < n_sliced; ++id) {
        if (pending[id] != 0) continue;
        const std::uint64_t base = id / num_slices;
        heaps[static_cast<std::uint64_t>(plan.stripe(base)) % rshards]
            .emplace(t_start, id);
      }
      // Sentinel: a drained shard publishes +inf so it never gates others.
      const Entry done{std::numeric_limits<double>::infinity(),
                       std::numeric_limits<std::uint64_t>::max()};
      std::vector<Entry> tops(rshards, done);
      for (std::size_t shard = 0; shard < rshards; ++shard) {
        if (!heaps[shard].empty()) tops[shard] = heaps[shard].top();
      }
      std::mutex replay_mu;
      std::condition_variable replay_cv;
      std::exception_ptr replay_error;
      bool replay_failed = false;
      auto run_replay_shard = [&](std::size_t shard) {
        Heap& heap = heaps[shard];
        std::unique_lock<std::mutex> lock(replay_mu);
        try {
          for (;;) {
            if (replay_failed || heap.empty()) break;
            // The conservative safe window: drain own events strictly below
            // every other shard's head.  Heads are pairwise distinct (ids
            // are unique), so the shard holding the global minimum never
            // blocks and the protocol cannot deadlock.
            Entry bound = done;
            for (std::size_t other = 0; other < rshards; ++other) {
              if (other != shard) bound = std::min(bound, tops[other]);
            }
            if (tops[shard] < bound) {
              while (!heap.empty() && heap.top() < bound) {
                const auto [at, id] = heap.top();
                heap.pop();
                process_event(at, id, heap);
              }
              tops[shard] = heap.empty() ? done : heap.top();
              replay_cv.notify_all();
            } else {
              replay_cv.wait(lock);
            }
          }
        } catch (...) {
          if (!replay_error) replay_error = std::current_exception();
          replay_failed = true;
        }
        tops[shard] = done;
        replay_cv.notify_all();
      };
      std::vector<std::thread> replay_workers;
      replay_workers.reserve(rshards);
      for (std::size_t shard = 0; shard < rshards; ++shard) {
        replay_workers.emplace_back(run_replay_shard, shard);
      }
      for (auto& worker : replay_workers) worker.join();
      if (replay_error) std::rethrow_exception(replay_error);
    }
  } else if (rshards == 1 && !streaming) {
    // Calendar engine, single shard, fully built plan: a plain drain.
    CalendarQueue ready(static_cast<std::size_t>(n_sliced));
    for (std::uint64_t id = 0; id < n_sliced; ++id) {
      if (pending[id] == 0) ready.push(t_start, id);
    }
    while (!ready.empty()) {
      const CalendarQueue::Entry event = ready.pop();
      process_event(event.time, event.key, ready);
    }
  } else {
    std::vector<CalendarQueue> queues;
    queues.reserve(rshards);
    for (std::size_t q = 0; q < rshards; ++q) {
      queues.emplace_back(static_cast<std::size_t>(n_sliced) / rshards + 1);
    }
    if (!streaming) {
      for (std::uint64_t id = 0; id < n_sliced; ++id) {
        if (pending[id] != 0) continue;
        const std::uint64_t base = id / num_slices;
        queues[static_cast<std::uint64_t>(plan.stripe(base)) % rshards].push(
            t_start, id);
      }
    }
    run_calendar_replay(queues);
  }

  if (streaming) {
    for (auto& worker : payload_workers) worker.join();
  }
  if (error) std::rethrow_exception(error);
  if (streaming) {
    CAR_CHECK(plan.stripe_closed(),
              "Cluster::execute_arena_streaming: streaming execution "
              "requires a stripe-closed plan (the watermark publishes whole "
              "stripes; cross-stripe deps would couple them)");
  }

  for (const ShardTotals& acc : totals) {
    report.cross_rack_bytes += acc.cross;
    report.intra_rack_bytes += acc.intra;
    for (std::size_t r = 0; r < acc.per_rack.size(); ++r) {
      report.per_rack_cross_bytes[r] += acc.per_rack[r];
    }
  }

  clock.advance_to(end);
  report.wall_s = end - t_start;

  // Publish recovered chunks for every stripe that actually carries bytes;
  // metadata-only stripes have nothing to publish (their recovery is
  // accounted, not materialised).
  for (const auto& out : plan.outputs()) {
    if (!is_real(out.stripe)) continue;
    const rs::Chunk* buf =
        impl_->find(plan.replacement(), step_key(out.step_id));
    CAR_CHECK_STATE(buf != nullptr,
                    "Cluster::execute_arena: recovered chunk missing");
    rs::Chunk copy = impl_->pool.take(buf->size());
    if (!buf->empty()) std::memcpy(copy.data(), buf->data(), buf->size());
    impl_->put(plan.replacement(), chunk_key(out.stripe, out.chunk_index),
               std::move(copy));
  }
  return report;
}

}  // namespace car::emul
