#include "simnet/flowsim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace car::simnet {

namespace {

using recovery::PlanStep;
using recovery::StepKind;

constexpr double kTimeEps = 1e-12;
constexpr double kByteEps = 1e-6;

/// Two-tier link table: per-node duplex access links and per-rack duplex
/// core links; the core itself is non-blocking.
struct LinkTable {
  std::vector<double> capacity;  // bytes/second
  std::size_t num_nodes = 0;

  static LinkTable build(const cluster::Topology& topology,
                         const NetConfig& config) {
    LinkTable t;
    t.num_nodes = topology.num_nodes();
    t.capacity.assign(2 * topology.num_nodes() + 2 * topology.num_racks(),
                      0.0);
    const double headroom = 1.0 - config.background_load;
    for (std::size_t n = 0; n < topology.num_nodes(); ++n) {
      t.capacity[2 * n] = config.node_bps * headroom;      // node -> ToR
      t.capacity[2 * n + 1] = config.node_bps * headroom;  // ToR -> node
    }
    for (std::size_t r = 0; r < topology.num_racks(); ++r) {
      const double rack_bps =
          config.rack_link_bps
              ? *config.rack_link_bps
              : static_cast<double>(topology.nodes_in_rack_count(r)) *
                    config.node_bps / config.oversubscription;
      t.capacity[t.rack_up(r)] = rack_bps * headroom;
      t.capacity[t.rack_down(r)] = rack_bps * headroom;
    }
    return t;
  }

  [[nodiscard]] std::size_t node_up(std::size_t node) const noexcept {
    return 2 * node;
  }
  [[nodiscard]] std::size_t node_down(std::size_t node) const noexcept {
    return 2 * node + 1;
  }
  [[nodiscard]] std::size_t rack_up(std::size_t rack) const noexcept {
    return 2 * num_nodes + 2 * rack;
  }
  [[nodiscard]] std::size_t rack_down(std::size_t rack) const noexcept {
    return 2 * num_nodes + 2 * rack + 1;
  }
};

struct ActiveFlow {
  std::size_t step_id = 0;
  double remaining_bytes = 0.0;
  double rate = 0.0;
  double start_time = 0.0;  // bytes flow only after per-hop latency elapses
  std::vector<std::size_t> route;  // link ids
};

/// Progressive-filling max-min fair allocation across the active flows.
/// Flows whose start_time lies in the future (per-hop latency still
/// elapsing) receive rate 0 and occupy no capacity.
void allocate_rates(std::vector<ActiveFlow>& flows, const LinkTable& links,
                    double now) {
  std::vector<double> residual = links.capacity;
  std::vector<std::size_t> unassigned_on_link(links.capacity.size(), 0);
  std::size_t remaining = 0;
  for (auto& f : flows) {
    if (f.start_time > now + kTimeEps) {
      f.rate = 0.0;  // still in its latency window
      continue;
    }
    if (f.route.empty()) {
      // src == dst: infinite rate conceptually; completed by the caller.
      f.rate = std::numeric_limits<double>::infinity();
      continue;
    }
    f.rate = -1.0;
    for (std::size_t l : f.route) ++unassigned_on_link[l];
    ++remaining;
  }

  while (remaining > 0) {
    // Bottleneck link: minimum fair share among links carrying unassigned
    // flows.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = links.capacity.size();
    for (std::size_t l = 0; l < links.capacity.size(); ++l) {
      if (unassigned_on_link[l] == 0) continue;
      const double share =
          residual[l] / static_cast<double>(unassigned_on_link[l]);
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    if (best_link == links.capacity.size()) break;  // defensive
    // Freeze every unassigned flow crossing the bottleneck at the fair share.
    for (auto& f : flows) {
      if (f.rate >= 0.0) continue;
      if (std::find(f.route.begin(), f.route.end(), best_link) ==
          f.route.end()) {
        continue;
      }
      f.rate = best_share;
      for (std::size_t l : f.route) {
        residual[l] -= best_share;
        if (residual[l] < 0) residual[l] = 0;
        --unassigned_on_link[l];
      }
      --remaining;
    }
  }
}

struct RunningCompute {
  std::size_t step_id = 0;
  double end_time = 0.0;
};

}  // namespace

SimResult simulate_plan(const cluster::Topology& topology,
                        const recovery::RecoveryPlan& plan,
                        const NetConfig& config) {
  config.validate(topology.num_racks());
  const LinkTable links = LinkTable::build(topology, config);
  const std::size_t n_steps = plan.steps.size();

  SimResult result;
  result.finish_time_s.assign(n_steps, -1.0);
  if (n_steps == 0) return result;

  // Dependency bookkeeping.
  std::vector<std::size_t> pending_deps(n_steps, 0);
  std::vector<std::vector<std::size_t>> dependents(n_steps);
  for (const auto& step : plan.steps) {
    for (std::size_t dep : step.deps) {
      CAR_CHECK_LT(dep, n_steps, "simulate_plan: unknown dependency id");
      ++pending_deps[step.id];
      dependents[dep].push_back(step.id);
    }
  }

  auto route_of = [&](const PlanStep& step) {
    std::vector<std::size_t> route;
    if (step.src == step.dst) return route;
    route.push_back(links.node_up(step.src));
    const auto src_rack = topology.rack_of(step.src);
    const auto dst_rack = topology.rack_of(step.dst);
    if (src_rack != dst_rack) {
      route.push_back(links.rack_up(src_rack));
      route.push_back(links.rack_down(dst_rack));
    }
    route.push_back(links.node_down(step.dst));
    return route;
  };

  auto compute_duration = [&](const PlanStep& step) {
    const bool pure_xor = std::all_of(
        step.inputs.begin(), step.inputs.end(),
        [](const recovery::ComputeInput& in) { return in.coeff <= 1; });
    const double base_bps =
        pure_xor ? config.xor_compute_bps : config.gf_compute_bps;
    const double mult =
        config.compute_multiplier(topology.rack_of(step.node));
    return static_cast<double>(step.bytes) / (base_bps * mult);
  };

  std::vector<ActiveFlow> flows;
  std::vector<RunningCompute> running;
  std::vector<std::deque<std::size_t>> cpu_queue(topology.num_nodes());
  std::vector<bool> cpu_busy(topology.num_nodes(), false);

  std::size_t completed = 0;
  double now = 0.0;

  auto finish_step = [&](std::size_t id, std::vector<std::size_t>& newly_ready) {
    result.finish_time_s[id] = now;
    ++completed;
    const auto& step = plan.steps[id];
    if (step.kind == StepKind::kTransfer) {
      result.last_transfer_s = std::max(result.last_transfer_s, now);
    }
    for (std::size_t dep : dependents[id]) {
      if (--pending_deps[dep] == 0) newly_ready.push_back(dep);
    }
  };

  auto admit = [&](std::size_t id) {
    const auto& step = plan.steps[id];
    if (step.kind == StepKind::kTransfer) {
      ActiveFlow flow;
      flow.step_id = id;
      flow.remaining_bytes = static_cast<double>(step.bytes);
      flow.route = route_of(step);
      flow.start_time =
          now + config.per_hop_latency_s * static_cast<double>(flow.route.size());
      flows.push_back(std::move(flow));
    } else {
      cpu_queue[step.node].push_back(id);
    }
  };

  // Admit all dependency-free steps.
  {
    std::vector<std::size_t> ready;
    for (std::size_t id = 0; id < n_steps; ++id) {
      if (pending_deps[id] == 0) ready.push_back(id);
    }
    for (std::size_t id : ready) admit(id);
  }

  while (completed < n_steps) {
    // Start queued computes on idle CPUs.
    for (std::size_t node = 0; node < cpu_queue.size(); ++node) {
      if (cpu_busy[node] || cpu_queue[node].empty()) continue;
      const std::size_t id = cpu_queue[node].front();
      cpu_queue[node].pop_front();
      const double duration = compute_duration(plan.steps[id]);
      running.push_back({id, now + duration});
      cpu_busy[node] = true;
      result.compute_busy_s += duration;
      if (node == plan.replacement) result.replacement_compute_s += duration;
    }

    // Zero-byte / same-node flows complete as soon as any latency elapses.
    std::vector<std::size_t> newly_ready;
    bool instant = false;
    for (auto it = flows.begin(); it != flows.end();) {
      if (it->start_time <= now + kTimeEps &&
          (it->route.empty() || it->remaining_bytes <= kByteEps)) {
        finish_step(it->step_id, newly_ready);
        it = flows.erase(it);
        instant = true;
      } else {
        ++it;
      }
    }
    if (instant) {
      for (std::size_t id : newly_ready) admit(id);
      continue;
    }

    if (flows.empty() && running.empty()) {
      CAR_CHECK_EQ(completed, n_steps,
                   "simulate_plan: plan has a dependency cycle or orphan "
                   "steps");
      break;
    }

    double dt = std::numeric_limits<double>::infinity();
    if (!flows.empty()) {
      allocate_rates(flows, links, now);
      for (const auto& f : flows) {
        if (f.start_time > now + kTimeEps) {
          dt = std::min(dt, f.start_time - now);  // wake at latency expiry
          continue;
        }
        if (f.rate <= 0.0) {
          throw std::logic_error("simulate_plan: flow starved of bandwidth");
        }
        dt = std::min(dt, f.remaining_bytes / f.rate);
      }
    }
    for (const auto& c : running) dt = std::min(dt, c.end_time - now);
    dt = std::max(dt, 0.0);

    now += dt;

    // Progress flows; collect completions (batch everything within eps).
    for (auto it = flows.begin(); it != flows.end();) {
      if (it->rate > 0.0 &&
          it->rate != std::numeric_limits<double>::infinity()) {
        it->remaining_bytes -= it->rate * dt;
      }
      if (it->start_time <= now + kTimeEps &&
          it->remaining_bytes <= kByteEps) {
        finish_step(it->step_id, newly_ready);
        it = flows.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = running.begin(); it != running.end();) {
      if (it->end_time <= now + kTimeEps) {
        cpu_busy[plan.steps[it->step_id].node] = false;
        finish_step(it->step_id, newly_ready);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
    for (std::size_t id : newly_ready) admit(id);
  }

  result.makespan_s = now;
  return result;
}

}  // namespace car::simnet
