// Serial link emulation for the in-process cluster emulator.
//
// A SerialLink models a store-and-forward network link of a fixed rate.
// Each transmission *reserves* link occupancy of bytes/rate seconds in
// virtual time mapped onto the wall clock, so concurrent transfers through a
// shared (e.g. oversubscribed rack) link really contend with each other.
// Reservations are non-blocking; callers sleep until the returned finish
// time, which lets a multi-hop transfer pipeline across its links (the
// transfer completes when the slowest hop drains, not the sum of hops).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace car::emul {

class SerialLink {
 public:
  using Clock = std::chrono::steady_clock;

  /// rate in bytes/second; must be positive.
  explicit SerialLink(double bytes_per_second);

  /// Reserve link occupancy for `bytes` and return the time at which the
  /// last byte leaves the link.  Does not block; thread-safe.
  Clock::time_point reserve(std::uint64_t bytes);

  /// Convenience: reserve and block until the bytes have traversed.
  void transmit(std::uint64_t bytes);

  [[nodiscard]] double rate() const noexcept { return rate_; }

  /// Total bytes ever reserved on this link (for accounting/tests).
  [[nodiscard]] std::uint64_t bytes_transmitted() const noexcept;

 private:
  double rate_;
  mutable std::mutex mu_;
  Clock::time_point next_free_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace car::emul
