#include "inject/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "cluster/failure.h"
#include "cluster/placement.h"
#include "cluster/topology.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "recovery/census.h"
#include "recovery/plan.h"
#include "recovery/random_recovery.h"
#include "recovery/validate.h"
#include "rs/code.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/rng.h"

namespace car::inject {

namespace {

[[noreturn]] void bad_spec(const std::string& line, const std::string& why) {
  throw std::invalid_argument("scenario spec: " + why + " in line: \"" +
                              line + "\"");
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string item;
  while (std::getline(stream, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::uint64_t parse_u64(const std::string& line, const std::string& value) {
  // std::stoull accepts a leading '-' and silently wraps it modulo 2^64
  // ("seed -1" used to parse as 18446744073709551615); require plain
  // decimal digits so negatives are a diagnostic, not a wrap.
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    bad_spec(line, "expected a non-negative integer, got \"" + value + "\"");
  }
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size()) bad_spec(line, "trailing junk in number");
    return v;
  } catch (const std::invalid_argument&) {
    bad_spec(line, "expected an integer, got \"" + value + "\"");
  } catch (const std::out_of_range&) {
    bad_spec(line, "integer out of range");
  }
}

/// parse_u64 with an inclusive range check, diagnosing the offending line.
std::uint64_t parse_u64_in(const std::string& line, const std::string& value,
                           std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t v = parse_u64(line, value);
  if (v < lo || v > hi) {
    bad_spec(line, "value " + value + " out of range [" + std::to_string(lo) +
                       ", " + std::to_string(hi) + "]");
  }
  return v;
}

double parse_f64(const std::string& line, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) bad_spec(line, "trailing junk in number");
    return v;
  } catch (const std::invalid_argument&) {
    bad_spec(line, "expected a number, got \"" + value + "\"");
  } catch (const std::out_of_range&) {
    bad_spec(line, "number out of range");
  }
}

/// "key=value" pairs of a `fault` line, order-preserving.
std::vector<std::pair<std::string, std::string>> parse_kv(
    const std::string& line, const std::vector<std::string>& tokens,
    std::size_t first) {
  std::vector<std::pair<std::string, std::string>> out;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == tokens[i].size()) {
      bad_spec(line, "expected key=value, got \"" + tokens[i] + "\"");
    }
    out.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
  }
  return out;
}

LinkSide parse_side(const std::string& line, const std::string& value) {
  if (value == "node-up") return LinkSide::kNodeUp;
  if (value == "node-down") return LinkSide::kNodeDown;
  if (value == "rack-up") return LinkSide::kRackUp;
  if (value == "rack-down") return LinkSide::kRackDown;
  bad_spec(line, "unknown link side \"" + value + "\"");
}

void parse_fault(const std::string& line,
                 const std::vector<std::string>& tokens, FaultPlan& plan) {
  if (tokens.size() < 2) bad_spec(line, "fault needs a type");
  const std::string& type = tokens[1];
  const auto kv = parse_kv(line, tokens, 2);

  if (type == "link") {
    LinkFault fault;
    for (const auto& [key, value] : kv) {
      if (key == "side") {
        fault.side = parse_side(line, value);
      } else if (key == "id") {
        fault.id = parse_u64(line, value);
      } else if (key == "start") {
        fault.start_s = parse_f64(line, value);
      } else if (key == "end") {
        fault.end_s = parse_f64(line, value);
      } else if (key == "factor") {
        fault.factor = parse_f64(line, value);
      } else {
        bad_spec(line, "unknown link-fault key \"" + key + "\"");
      }
    }
    plan.link_faults.push_back(fault);
    return;
  }

  if (type == "drop" || type == "corrupt") {
    TransferFault fault;
    fault.kind = type == "drop" ? TransferFault::Kind::kDrop
                                : TransferFault::Kind::kCorrupt;
    for (const auto& [key, value] : kv) {
      if (key == "step") {
        fault.step = parse_u64(line, value);
      } else if (key == "attempts") {
        for (const auto& a : split(value, ',')) {
          fault.attempts.push_back(parse_u64(line, a));
        }
      } else if (key == "prob") {
        fault.probability = parse_f64(line, value);
      } else {
        bad_spec(line, "unknown transfer-fault key \"" + key + "\"");
      }
    }
    plan.transfer_faults.push_back(std::move(fault));
    return;
  }

  if (type == "crash") {
    NodeCrash crash;
    for (const auto& [key, value] : kv) {
      if (key == "node") {
        crash.node = static_cast<cluster::NodeId>(parse_u64(line, value));
      } else if (key == "at-fraction") {
        crash.at_fraction = parse_f64(line, value);
      } else if (key == "at-time") {
        crash.at_time_s = parse_f64(line, value);
      } else {
        bad_spec(line, "unknown crash key \"" + key + "\"");
      }
    }
    plan.node_crashes.push_back(crash);
    return;
  }

  bad_spec(line, "unknown fault type \"" + type + "\"");
}

// --- canned scenario specs --------------------------------------------------
//
// Embedded as text and parsed through parse_scenario, so the spec grammar
// itself is covered by every test/CI run that touches a canned scenario.

constexpr const char* kLinkFlap = R"(# A core link flaps: two blackouts on rack 0's uplink while recovery runs.
# Transfers that straddle a blackout exceed the 0.1 s timeout, retry with
# backoff, and complete once the link returns.
name link-flap
racks 4,3,3
k 4
m 2
stripes 12
chunk-kib 64
page-kib 16
seed 11
strategy car
node-mbps 100
oversub 5
timeout 0.1
max-attempts 8
backoff-base 0.04
backoff-factor 2
backoff-cap 0.4
backoff-jitter 0.2
fault link side=rack-up id=0 start=0.0 end=0.3 factor=0
fault link side=rack-up id=0 start=0.5 end=0.65 factor=0
)";

constexpr const char* kMidRecoveryCrash = R"(# The acceptance scenario: node 2 fails, recovery starts, and node 5 dies
# once 40% of the plan has completed.  The runtime cancels the remaining
# steps, re-plans the two-node failure via recovery/multi, re-validates, and
# finishes with bit-exact chunks for every lost chunk of both nodes.
name mid-recovery-crash
racks 4,3,3
k 4
m 2
stripes 12
chunk-kib 64
page-kib 16
seed 7
strategy car
fail-node 2
node-mbps 100
oversub 5
timeout 0.5
max-attempts 6
backoff-base 0.02
backoff-factor 2
backoff-cap 0.25
backoff-jitter 0.2
fault crash node=5 at-fraction=0.4
)";

constexpr const char* kSlowStragglerRack = R"(# Rack 2's core links crawl at 10% for the first two seconds and a third of
# first attempts drop: recovery slows and retries but stays correct.
name slow-straggler-rack
racks 4,3,3
k 4
m 2
stripes 12
chunk-kib 64
page-kib 16
seed 23
strategy car
node-mbps 100
oversub 5
timeout 0.25
max-attempts 8
backoff-base 0.03
backoff-factor 2
backoff-cap 0.3
backoff-jitter 0.2
fault link side=rack-up id=2 start=0.0 end=2.0 factor=0.1
fault link side=rack-down id=2 start=0.0 end=2.0 factor=0.1
fault drop attempts=1 prob=0.33
)";

constexpr const char* kDegradedCore = R"(# Every core link (both directions) at half rate for the whole run — the
# EXPERIMENTS.md setting for CAR vs RR under a degraded core, scaled down
# for test speed (examples/specs/degraded-core-fig9.spec is the full-size
# fig9 variant).
name degraded-core
racks 4,3,3
k 4
m 2
stripes 12
chunk-kib 64
page-kib 16
seed 7
strategy car
node-mbps 100
oversub 5
timeout 0.5
max-attempts 6
backoff-base 0.02
backoff-factor 2
backoff-cap 0.25
backoff-jitter 0.2
fault link side=rack-up id=0 start=0.0 end=30.0 factor=0.5
fault link side=rack-up id=1 start=0.0 end=30.0 factor=0.5
fault link side=rack-up id=2 start=0.0 end=30.0 factor=0.5
fault link side=rack-down id=0 start=0.0 end=30.0 factor=0.5
fault link side=rack-down id=1 start=0.0 end=30.0 factor=0.5
fault link side=rack-down id=2 start=0.0 end=30.0 factor=0.5
)";

struct CannedEntry {
  const char* name;
  const char* spec;
};

constexpr CannedEntry kCanned[] = {
    {"link-flap", kLinkFlap},
    {"mid-recovery-crash", kMidRecoveryCrash},
    {"slow-straggler-rack", kSlowStragglerRack},
    {"degraded-core", kDegradedCore},
};

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  std::set<std::string> seen;
  // Crash bookkeeping for the duplicate/conflict diagnostics: every node
  // named by a `crash` line, a `fault crash` line, or `fail-node` may
  // appear exactly once across all three forms — a node cannot die twice,
  // and the initially failed node cannot also crash later.
  std::set<cluster::NodeId> crashed_nodes;
  std::optional<double> last_crash_at;
  const auto note_crash_node = [&](const std::string& line,
                                   cluster::NodeId node) {
    if (scenario.fail_node && *scenario.fail_node == node) {
      bad_spec(line, "node " + std::to_string(node) +
                         " is already the initial failure (fail-node)");
    }
    if (!crashed_nodes.insert(node).second) {
      bad_spec(line, "duplicate crash for node " + std::to_string(node));
    }
  };
  std::stringstream stream(text);
  std::string raw;
  while (std::getline(stream, raw)) {
    const auto hash = raw.find('#');
    const std::string line = trim(hash == std::string::npos
                                      ? raw
                                      : raw.substr(0, hash));
    if (line.empty()) continue;
    const auto tokens = split(line, ' ');
    const std::string& key = tokens.front();

    if (key == "fault") {
      parse_fault(line, tokens, scenario.faults);
      if (tokens.size() >= 2 && tokens[1] == "crash") {
        note_crash_node(line, scenario.faults.node_crashes.back().node);
      }
      continue;
    }
    if (key == "crash") {
      // Rolling-failure event: `crash node=N at=T`, repeatable, in
      // non-decreasing time order.
      NodeCrash crash;
      bool have_node = false;
      bool have_at = false;
      for (const auto& [k, v] : parse_kv(line, tokens, 1)) {
        if (k == "node") {
          crash.node = static_cast<cluster::NodeId>(parse_u64(line, v));
          have_node = true;
        } else if (k == "at") {
          const double at = parse_f64(line, v);
          if (at < 0) bad_spec(line, "crash time must be >= 0");
          crash.at_time_s = at;
          have_at = true;
        } else {
          bad_spec(line, "unknown crash key \"" + k + "\"");
        }
      }
      if (!have_node || !have_at) bad_spec(line, "crash needs node= and at=");
      if (last_crash_at && *crash.at_time_s < *last_crash_at) {
        bad_spec(line, "crash events must be listed in non-decreasing time "
                       "order (previous event at " +
                           std::to_string(*last_crash_at) + "s)");
      }
      last_crash_at = *crash.at_time_s;
      note_crash_node(line, crash.node);
      scenario.faults.node_crashes.push_back(crash);
      continue;
    }
    if (tokens.size() != 2) bad_spec(line, "expected \"key value\"");
    // Scalar keys must appear at most once: a silent last-wins overwrite
    // turns a typo'd spec into a quietly different experiment.  (fault
    // lines legitimately repeat and are handled above.)
    if (!seen.insert(key).second) {
      bad_spec(line, "duplicate key \"" + key + "\"");
    }
    const std::string& value = tokens[1];

    if (key == "name") {
      scenario.name = value;
    } else if (key == "racks") {
      scenario.racks.clear();
      for (const auto& r : split(value, ',')) {
        scenario.racks.push_back(parse_u64(line, r));
      }
      if (scenario.racks.empty()) bad_spec(line, "racks needs >= 1 entry");
    } else if (key == "k") {
      scenario.k = parse_u64(line, value);
    } else if (key == "m") {
      scenario.m = parse_u64(line, value);
    } else if (key == "stripes") {
      scenario.stripes = parse_u64(line, value);
    } else if (key == "chunk-kib") {
      scenario.chunk_bytes = parse_u64(line, value) * util::kKiB;
    } else if (key == "page-kib") {
      scenario.page_bytes = parse_u64(line, value) * util::kKiB;
    } else if (key == "slice-kib") {
      // 0 would divide-by-zero the slice grid and anything above 1 GiB is
      // certainly a unit mistake (the value is KiB, not bytes).
      scenario.slice_bytes =
          parse_u64_in(line, value, 1, std::uint64_t{1} << 20) * util::kKiB;
    } else if (key == "seed") {
      scenario.seed = parse_u64(line, value);
    } else if (key == "strategy") {
      if (value != "car" && value != "rr") {
        bad_spec(line, "strategy must be car or rr");
      }
      scenario.strategy = value;
    } else if (key == "fail-node") {
      scenario.fail_node = static_cast<cluster::NodeId>(parse_u64(line, value));
      if (crashed_nodes.contains(*scenario.fail_node)) {
        bad_spec(line, "node " + value +
                           " already crashes later in the scenario (crash/"
                           "fault crash)");
      }
    } else if (key == "batch-stripes") {
      scenario.rebuild_batch_stripes = parse_u64_in(line, value, 1, 1 << 20);
    } else if (key == "concurrency") {
      scenario.rebuild_concurrency = parse_u64_in(line, value, 1, 64);
    } else if (key == "data-mode") {
      if (value != "real" && value != "metadata") {
        bad_spec(line, "data-mode must be real or metadata");
      }
      scenario.data_mode = value;
    } else if (key == "sample") {
      scenario.sample_stripes = parse_u64_in(line, value, 0, 1 << 20);
    } else if (key == "node-mbps") {
      scenario.node_bps = parse_f64(line, value) * 1e6;
    } else if (key == "oversub") {
      scenario.oversubscription = parse_f64(line, value);
    } else if (key == "timeout") {
      scenario.retry.transfer_timeout_s = parse_f64(line, value);
    } else if (key == "max-attempts") {
      scenario.retry.max_attempts = parse_u64(line, value);
    } else if (key == "backoff-base" || key == "backoff-factor" ||
               key == "backoff-cap" || key == "backoff-jitter") {
      const auto& old = scenario.retry.backoff;
      const double v = parse_f64(line, value);
      scenario.retry.backoff = util::BackoffSchedule(
          key == "backoff-base" ? v : old.base_s(),
          key == "backoff-factor" ? v : old.factor(),
          key == "backoff-cap" ? v : old.cap_s(),
          key == "backoff-jitter" ? v : old.jitter());
    } else {
      bad_spec(line, "unknown key \"" + key + "\"");
    }
  }
  return scenario;
}

std::vector<std::string> canned_scenario_names() {
  std::vector<std::string> names;
  for (const auto& entry : kCanned) names.emplace_back(entry.name);
  return names;
}

Scenario canned_scenario(const std::string& name) {
  for (const auto& entry : kCanned) {
    if (name == entry.name) return parse_scenario(entry.spec);
  }
  throw std::invalid_argument("unknown canned scenario \"" + name +
                              "\" (have: link-flap, mid-recovery-crash, "
                              "slow-straggler-rack, degraded-core)");
}

ScenarioOutcome run_scenario(const Scenario& scenario) {
  CAR_CHECK(scenario.strategy == "car" || scenario.strategy == "rr",
            "run_scenario: strategy must be car or rr");
  const cluster::Topology topology(scenario.racks);
  const rs::Code code(scenario.k, scenario.m);

  emul::EmulConfig config;
  config.node_bps = scenario.node_bps;
  config.oversubscription = scenario.oversubscription;
  config.page_bytes = scenario.page_bytes;
  config.clock_mode = emul::ClockMode::kVirtual;
  emul::Cluster cluster(topology, config);

  const bool seeded_data = scenario.data_mode.has_value();
  const bool metadata = seeded_data && *scenario.data_mode == "metadata";

  util::Rng rng(scenario.seed);
  const auto placement = cluster::Placement::random(
      topology, scenario.k, scenario.m, scenario.stripes, rng);

  // Classic flow: one shared rng stream populates everything before the
  // failure is drawn.  Seeded-data flow (`data-mode`): the failure is drawn
  // from the same stream *without* populating first, so "real" and
  // "metadata" runs of one spec agree on placement, failure, and plan;
  // stripes are materialised further down from per-stripe seeds once the
  // plan says which ones matter.
  std::unordered_map<cluster::StripeId, std::vector<rs::Chunk>> originals;
  if (!seeded_data) {
    auto all = cluster.populate(placement, code, scenario.chunk_bytes, rng);
    originals.reserve(all.size());
    for (cluster::StripeId s = 0; s < all.size(); ++s) {
      originals.emplace(s, std::move(all[s]));
    }
  }

  const auto failure =
      scenario.fail_node
          ? cluster::inject_node_failure(placement, *scenario.fail_node)
          : cluster::inject_random_failure(placement, rng);
  if (!seeded_data) cluster.erase_node(failure.failed_node);

  const auto censuses = recovery::build_censuses(placement, failure);
  const bool car = scenario.strategy == "car";
  recovery::RecoveryPlan plan;
  recovery::ValidateOptions options;
  options.placement = &placement;
  if (car) {
    const auto balanced = recovery::balance_greedy(placement, censuses, {50});
    plan = recovery::build_car_plan(placement, code, balanced.solutions,
                                    scenario.chunk_bytes,
                                    failure.failed_node);
    options.expected_cross_rack_chunks = recovery::claimed_cross_rack_chunks(
        balanced.solutions, failure.failed_rack);
  } else {
    util::Rng rr_rng(scenario.seed + 1);
    const auto solutions = recovery::plan_rr(placement, censuses, rr_rng);
    plan = recovery::build_rr_plan(placement, code, solutions,
                                   scenario.chunk_bytes, failure.failed_node);
  }

  ScenarioOutcome outcome;
  outcome.failed_node = failure.failed_node;
  outcome.initial_validation = recovery::validate_plan(plan, topology, options);
  CAR_CHECK_STATE(outcome.initial_validation.ok(),
                  "run_scenario: initial plan failed validation:\n" +
                      outcome.initial_validation.to_string());

  DataPolicy data;
  if (seeded_data) {
    // Materialise stripes from per-stripe seeds: all of them under
    // data-mode real, the first `sample` distinct output stripes under
    // data-mode metadata.
    std::vector<cluster::StripeId> materialise;
    if (metadata) {
      for (const auto& out : plan.outputs) {
        if (std::find(materialise.begin(), materialise.end(), out.stripe) ==
            materialise.end()) {
          materialise.push_back(out.stripe);
          if (materialise.size() >= scenario.sample_stripes) break;
        }
      }
      data.metadata_only = true;
      data.sampled_stripes = materialise;
    } else {
      materialise.resize(scenario.stripes);
      std::iota(materialise.begin(), materialise.end(), 0);
    }
    originals = cluster.populate_sampled(placement, code,
                                         scenario.chunk_bytes, scenario.seed,
                                         materialise);
    cluster.erase_node(failure.failed_node);
  }

  ResilientRuntime runtime(cluster, scenario.faults, scenario.retry,
                           scenario.seed);
  ReplanContext context;
  context.placement = &placement;
  context.code = &code;
  context.failed_nodes = {failure.failed_node};
  context.strategy = car ? ReplanStrategy::kCar : ReplanStrategy::kRr;
  outcome.run = runtime.execute_sliced(
      plan,
      scenario.slice_bytes > 0 ? scenario.slice_bytes
                               : std::max<std::uint64_t>(plan.chunk_size, 1),
      context, data);

  // Bit-exactness: every output of the plan that actually finished (the
  // re-plan after a crash, otherwise the original) must match the bytes the
  // failed node(s) held before the run.  Metadata-only stripes carry no
  // bytes — they are measured, not checked.
  outcome.stripes_materialised = originals.size();
  for (const auto& out : outcome.run.final_plan.outputs) {
    const auto it = originals.find(out.stripe);
    if (it == originals.end()) continue;
    ++outcome.chunks_expected;
    const rs::Chunk* recovered = cluster.find_chunk(
        outcome.run.final_plan.replacement, out.stripe, out.chunk_index);
    if (recovered != nullptr &&
        *recovered == it->second[out.chunk_index]) {
      ++outcome.chunks_verified;
    }
  }
  outcome.bit_exact = outcome.chunks_verified == outcome.chunks_expected;
  return outcome;
}

}  // namespace car::inject
