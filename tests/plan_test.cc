#include "recovery/plan.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"
#include "recovery/balancer.h"

namespace car::recovery {
namespace {

using cluster::Placement;

struct Fixture {
  cluster::CfsConfig cfg;
  Placement placement;
  rs::Code code;
  cluster::FailureScenario scenario;
  std::vector<StripeCensus> censuses;

  explicit Fixture(int cfg_index, std::uint64_t seed, std::size_t stripes = 30)
      : cfg(cluster::paper_configs()[cfg_index]),
        placement(make_placement(cfg, stripes, seed)),
        code(cfg.k, cfg.m) {
    util::Rng rng(seed + 1);
    scenario = cluster::inject_random_failure(placement, rng);
    censuses = build_censuses(placement, scenario);
  }

  static Placement make_placement(const cluster::CfsConfig& cfg,
                                  std::size_t stripes, std::uint64_t seed) {
    util::Rng rng(seed);
    return Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  }
};

void check_dag(const RecoveryPlan& plan) {
  // Deps reference earlier steps only (the builders emit topologically).
  for (const auto& step : plan.steps) {
    for (std::size_t dep : step.deps) {
      EXPECT_LT(dep, step.id) << "dependency must precede the step";
    }
  }
}

class PlanSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PlanSweep, CarPlanMatchesAnalyticTrafficAccounting) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const auto balanced = balance_greedy(f.placement, f.censuses, {50});
  constexpr std::uint64_t kChunk = 1 << 20;
  const auto plan = build_car_plan(f.placement, f.code, balanced.solutions,
                                   kChunk, f.scenario.failed_node);
  check_dag(plan);

  const auto summary =
      car_traffic(balanced.solutions, f.placement.topology().num_racks(),
                  f.scenario.failed_rack);
  EXPECT_EQ(plan.cross_rack_bytes(), summary.total_bytes(kChunk));

  const auto per_rack = plan.per_rack_cross_bytes(f.placement.topology());
  for (cluster::RackId r = 0; r < per_rack.size(); ++r) {
    EXPECT_EQ(per_rack[r], summary.per_rack_chunks[r] * kChunk)
        << "rack " << r;
  }
  EXPECT_EQ(plan.outputs.size(), f.censuses.size());
}

TEST_P(PlanSweep, RrPlanMatchesAnalyticTrafficAccounting) {
  Fixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  util::Rng rng(std::get<1>(GetParam()) + 5);
  const auto rr = plan_rr(f.placement, f.censuses, rng);
  constexpr std::uint64_t kChunk = 1 << 18;
  const auto plan =
      build_rr_plan(f.placement, f.code, rr, kChunk, f.scenario.failed_node);
  check_dag(plan);

  const auto summary = rr_traffic(f.placement, rr, f.scenario.failed_rack);
  EXPECT_EQ(plan.cross_rack_bytes(), summary.total_bytes(kChunk));
  EXPECT_EQ(plan.outputs.size(), f.censuses.size());

  // RR ships each fetched chunk once and computes once per stripe.
  std::size_t expected_transfers = 0;
  for (const auto& solution : rr) {
    for (std::size_t chunk : solution.chunk_indices) {
      expected_transfers +=
          f.placement.node_of(solution.stripe, chunk) != f.scenario.failed_node;
    }
  }
  EXPECT_EQ(plan.num_transfers(), expected_transfers);
  EXPECT_EQ(plan.num_computes(), rr.size());
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, PlanSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(11u, 47u)));

TEST(CarPlan, StructurePerStripe) {
  Fixture f(0, 3, 5);
  const auto solutions = plan_car_initial(f.placement, f.censuses);
  const auto plan = build_car_plan(f.placement, f.code, solutions, 4096,
                                   f.scenario.failed_node);

  // Per stripe: one partial-decode compute per contributing rack, one
  // partial shipment per contributing rack, one final combine.
  std::size_t expected_computes = 0;
  std::size_t expected_partial_ships = 0;
  for (const auto& s : solutions) {
    expected_computes += s.picks.size() + 1;  // partials + final XOR
    expected_partial_ships += s.picks.size();
  }
  EXPECT_EQ(plan.num_computes(), expected_computes);

  // Intra-rack gather transfers: picked chunks not hosted by the aggregator.
  std::size_t gather = 0;
  for (const auto& s : solutions) {
    for (const auto& pick : s.picks) gather += pick.chunk_indices.size() - 1;
  }
  EXPECT_EQ(plan.num_transfers(), gather + expected_partial_ships);

  // The final combine for each stripe runs on the replacement and XORs one
  // partial per contributing rack.
  for (const auto& out : plan.outputs) {
    const auto& step = plan.steps[out.step_id];
    EXPECT_EQ(step.kind, StepKind::kCompute);
    EXPECT_EQ(step.node, f.scenario.failed_node);
    for (const auto& in : step.inputs) {
      EXPECT_EQ(in.coeff, 1) << "final combine must be a pure XOR";
      EXPECT_EQ(in.buffer.kind, BufferRef::Kind::kStepOutput);
    }
  }
}

TEST(Plan, ZeroChunkSizeRejected) {
  Fixture f(0, 4, 2);
  const auto solutions = plan_car_initial(f.placement, f.censuses);
  EXPECT_THROW(build_car_plan(f.placement, f.code, solutions, 0,
                              f.scenario.failed_node),
               std::invalid_argument);
  util::Rng rng(8);
  const auto rr = plan_rr(f.placement, f.censuses, rng);
  EXPECT_THROW(
      build_rr_plan(f.placement, f.code, rr, 0, f.scenario.failed_node),
      std::invalid_argument);
}

TEST(Plan, IntraPlusCrossEqualsAllTransferBytes) {
  Fixture f(2, 9, 20);
  const auto solutions = plan_car_initial(f.placement, f.censuses);
  const auto plan = build_car_plan(f.placement, f.code, solutions, 1024,
                                   f.scenario.failed_node);
  std::uint64_t all = 0;
  for (const auto& step : plan.steps) {
    if (step.kind == StepKind::kTransfer) all += step.bytes;
  }
  EXPECT_EQ(plan.cross_rack_bytes() + plan.intra_rack_bytes(), all);
}

}  // namespace
}  // namespace car::recovery
