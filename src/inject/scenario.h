// Declarative fault-injection scenarios.
//
// A Scenario bundles everything one resilient-recovery experiment needs —
// topology, code, workload, strategy, retry policy, and a FaultPlan — and
// can be written as a small line-oriented text spec (`carctl inject-run
// --spec file`).  The spec grammar:
//
//   # comment
//   name mid-recovery-crash
//   racks 4,3,3            # nodes per rack
//   k 4
//   m 2
//   stripes 12
//   chunk-kib 64
//   slice-kib 16           # optional; > 0 = slice-pipelined execution
//   seed 7
//   strategy car           # car | rr
//   fail-node 2            # optional; default: seeded random data node
//   node-mbps 100
//   oversub 5
//   page-kib 16
//   timeout 0.25           # per-transfer timeout, seconds
//   max-attempts 6
//   backoff-base 0.02      # backoff-factor / backoff-cap / backoff-jitter
//   data-mode metadata     # optional; real | metadata (see Scenario)
//   sample 4               # sampled real-byte stripes under data-mode
//   fault link side=rack-up id=0 start=0 end=0.3 factor=0
//   fault drop step=3 attempts=1,2 prob=0.5
//   fault corrupt attempts=1
//   fault crash node=5 at-fraction=0.4     # or at-time=1.25
//   crash node=5 at=0.4    # rolling failures: repeatable, times
//   crash node=9 at=1.2    # non-decreasing, duplicate nodes rejected
//   batch-stripes 4        # rebuild control plane: stripes per batch
//   concurrency 2          # ... and concurrent in-flight batches
//
// `crash node=N at=T` is the declarative rolling-failure form: each line
// appends one NodeCrash (at virtual time T) to the fault plan, in spec
// order.  A node named twice (by any crash line or by fail-node) or an
// out-of-order time is a parse error naming the offending line.
//
// Canned scenarios (link-flap, mid-recovery-crash, slow-straggler-rack,
// degraded-core) are embedded specs parsed through the same grammar, so the
// parser is exercised by every CI run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/types.h"
#include "inject/fault.h"
#include "inject/runtime.h"
#include "recovery/validate.h"

namespace car::inject {

struct Scenario {
  std::string name = "custom";
  std::vector<std::size_t> racks{4, 3, 3};
  std::size_t k = 4;
  std::size_t m = 2;
  std::size_t stripes = 12;
  std::uint64_t chunk_bytes = 64 * 1024;
  std::uint64_t page_bytes = 16 * 1024;
  /// Slice-pipelined execution granularity (spec key `slice-kib`).  0 runs
  /// the classic chunk-granular engine; > 0 lowers the plan onto that grid
  /// (recovery/slice.h) so transfers and partial decodes overlap per slice.
  /// Recovered bytes are identical either way.
  std::uint64_t slice_bytes = 0;
  std::uint64_t seed = 7;
  /// "car" (rack-aware + partial decoding) or "rr" (ship-and-decode).
  std::string strategy = "car";
  /// Node to fail initially; unset = seeded random data-bearing node.
  std::optional<cluster::NodeId> fail_node;
  /// Payload policy (spec key `data-mode`).  Unset = the classic flow: one
  /// shared rng stream populates every stripe.  "real" and "metadata" both
  /// switch to per-stripe seeded data (emul::Cluster::stripe_seed) with the
  /// failure drawn *before* any population, so the two modes see identical
  /// placement, failure, plan, and event log; "metadata" then materialises
  /// only the sampled stripes (inject::DataPolicy) while "real"
  /// materialises all of them — the differential pair behind the
  /// metadata-mode tests.
  std::optional<std::string> data_mode;
  /// Sampled (real-byte, bit-exact-verified) stripes under data-mode
  /// metadata: the first `sample` distinct stripes among the plan's
  /// outputs (spec key `sample`, default 4).
  std::size_t sample_stripes = 4;
  double node_bps = 100e6;
  double oversubscription = 5.0;
  /// Rebuild control plane (src/rebuild) knobs: stripes dispatched per
  /// batch (spec key `batch-stripes`) and concurrent in-flight batches
  /// (spec key `concurrency`).  Ignored by run_scenario.
  std::size_t rebuild_batch_stripes = 4;
  std::size_t rebuild_concurrency = 2;
  RetryPolicy retry;
  FaultPlan faults;
};

/// Parse a text spec (see the grammar above).  Throws std::invalid_argument
/// naming the offending line on any unknown key, malformed value, or
/// inconsistent fault description.
Scenario parse_scenario(const std::string& text);

/// Names of the embedded canned scenarios, in listing order.
[[nodiscard]] std::vector<std::string> canned_scenario_names();

/// Fetch an embedded scenario by name (throws std::invalid_argument for
/// unknown names; see canned_scenario_names).
Scenario canned_scenario(const std::string& name);

/// Everything a scenario run produced, for assertions and reporting.
struct ScenarioOutcome {
  cluster::NodeId failed_node = 0;   // the initial failure
  /// Outputs whose bytes were checked: all of them, except under data-mode
  /// metadata where only sampled stripes carry bytes to check.
  std::size_t chunks_expected = 0;
  std::size_t chunks_verified = 0;   // ... that matched the original bytes
  bool bit_exact = false;            // chunks_verified == chunks_expected
  /// Stripes materialised with real bytes: every stripe outside data-mode
  /// metadata, the sampled subset under it.
  std::size_t stripes_materialised = 0;
  recovery::ValidationReport initial_validation;
  RunResult run;
};

/// Build the emulated cluster, populate it, fail a node, plan recovery with
/// the scenario's strategy, validate the plan, and execute it under the
/// scenario's FaultPlan via ResilientRuntime.  Recovered chunks are compared
/// byte-for-byte against the originals.  Deterministic: the same scenario
/// yields the same ScenarioOutcome (including a byte-identical EventLog).
ScenarioOutcome run_scenario(const Scenario& scenario);

}  // namespace car::inject
